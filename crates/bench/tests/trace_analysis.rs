//! End-to-end tests for the trace analysis toolkit: `trace_report` /
//! `trace_diff` / `perf_baseline` against *real* journals produced by a
//! real driver, plus the strengthened structural checks in
//! `trace_validate`.
//!
//! These pin the acceptance criteria of the toolkit:
//! * self time reconstructed from a `fig9_overhead` journal sums to the
//!   instrumented wall time within 1%;
//! * two identical-seed runs diff to zero counter deltas;
//! * `perf_baseline` writes a byte-identical deterministic `"results"`
//!   block across runs, and a self-diff under `mode=gate` is clean;
//! * structurally broken journals (truncation, backwards counters,
//!   parent mismatches) fail validation with the offending line named.

use dbtune_bench::artifact::{load_journal, lookup};
use dbtune_trace::{build_trees, diff_summaries, merge_paths, summarize, DiffConfig};
use serde::Value;
use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbtune_trace_analysis_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs `fig9_overhead` at tiny scale with tracing into `journal`.
///
/// `workers=1` keeps the evaluation counters exactly reproducible: at
/// two or more workers, concurrent sessions can race the shared cache
/// and both compute a missing entry (the loser's result is discarded),
/// so `sim.evals` varies run to run even at a fixed seed. The results
/// payload is still byte-identical — only the work-count telemetry
/// moves — but the zero-delta diff below needs the single-worker case.
fn run_fig9(dir: &Path, journal: &Path) {
    std::fs::create_dir_all(dir).expect("create driver cwd");
    let exe = env!("CARGO_BIN_EXE_fig9_overhead");
    let out = Command::new(exe)
        .args(["samples=120", "iters=6", "workers=1", "seeds=1"])
        .arg(format!("trace={}", journal.display()))
        .current_dir(dir)
        .output()
        .expect("spawn fig9_overhead");
    assert!(out.status.success(), "fig9_overhead failed: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn trace_report_reconstructs_a_real_journal_with_exact_self_time() {
    let dir = scratch("report");
    let journal_path = dir.join("fig9.jsonl");
    run_fig9(&dir, &journal_path);

    // In-process: the tree's total self time must equal the instrumented
    // wall time to within 1% (it is exact by construction — the 1% bound
    // is the acceptance criterion's tolerance for clock-skew saturation).
    let journal = load_journal(&journal_path).expect("journal loads");
    let trees = build_trees(&journal.events).expect("journal is structurally sound");
    let merged = merge_paths(&trees);
    let wall: u64 = trees.iter().map(|t| t.total_nanos()).sum();
    let self_sum = merged.deep_self_nanos();
    assert!(wall > 0, "fig9 must record spans");
    let drift = (wall as f64 - self_sum as f64).abs() / wall as f64;
    assert!(drift < 0.01, "self-time sum {self_sum} vs wall {wall}: {:.3}% off", drift * 100.0);

    // The binary: exit 0, report on stdout, both exports written.
    let out = Command::new(env!("CARGO_BIN_EXE_trace_report"))
        .arg(journal_path.as_os_str())
        .output()
        .expect("spawn trace_report");
    assert!(out.status.success(), "trace_report failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("self-time sum"), "missing summary line:\n{stdout}");
    assert!(stdout.contains("session"), "missing span rows:\n{stdout}");

    let folded = std::fs::read_to_string(dir.join("fig9.folded")).expect("folded written");
    let folded_total: u64 = folded
        .lines()
        .map(|l| {
            l.rsplit(' ')
                .next()
                .expect("collapsed line has a count")
                .parse::<u64>()
                .expect("collapsed line value")
        })
        .sum();
    assert_eq!(folded_total, self_sum, "collapsed-stack values are self times");

    let chrome = std::fs::read_to_string(dir.join("fig9.chrome.json")).expect("chrome written");
    let value: Value = serde_json::from_str(&chrome).expect("chrome export is valid JSON");
    let events = lookup(&value, "traceEvents").and_then(Value::as_array).expect("traceEvents");
    let span_events =
        events.iter().filter(|e| lookup(e, "ph").and_then(Value::as_str) == Some("X")).count();
    let total_spans: usize =
        trees.iter().map(|t| t.roots.iter().map(|r| r.node_count()).sum::<usize>()).sum();
    assert_eq!(span_events, total_spans, "one complete event per span");
}

#[test]
fn identical_seed_runs_diff_to_zero_counter_deltas() {
    let dir = scratch("diff_clean");
    let (a, b) = (dir.join("a.jsonl"), dir.join("b.jsonl"));
    run_fig9(&dir.join("run_a"), &a);
    run_fig9(&dir.join("run_b"), &b);

    let base = summarize(&load_journal(&a).expect("a loads"));
    let cur = summarize(&load_journal(&b).expect("b loads"));
    let entries = diff_summaries(&base, &cur, &DiffConfig::default());
    let flagged: Vec<_> = entries.iter().filter(|e| e.flagged).collect();
    assert!(flagged.is_empty(), "identical-seed runs must diff clean: {flagged:#?}");

    // Same through the binary, in gate mode.
    let out = Command::new(env!("CARGO_BIN_EXE_trace_diff"))
        .args([a.as_os_str(), b.as_os_str()])
        .arg("mode=gate")
        .output()
        .expect("spawn trace_diff");
    assert!(
        out.status.success(),
        "trace_diff gate failed on identical runs:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("zero counter deltas"));
}

#[test]
fn trace_diff_gate_flags_an_artificially_slowed_span() {
    let dir = scratch("diff_slow");
    let mk = |path: &Path, fit_nanos: u64| {
        let text = format!(
            concat!(
                "{{\"type\":\"meta\",\"version\":1,\"source\":\"unit\"}}\n",
                "{{\"type\":\"span\",\"name\":\"surrogate_fit\",\"parent\":\"session\",",
                "\"depth\":1,\"dur_nanos\":{fit},\"thread\":0,\"seq\":1}}\n",
                "{{\"type\":\"span\",\"name\":\"session\",\"parent\":null,\"depth\":0,",
                "\"dur_nanos\":{total},\"thread\":0,\"seq\":2}}\n",
                "{{\"type\":\"counter\",\"name\":\"sim.evals\",\"value\":10,\"seq\":3}}\n"
            ),
            fit = fit_nanos,
            total = fit_nanos + 1_000_000,
        );
        std::fs::write(path, text).expect("write journal");
    };
    let (base, slow) = (dir.join("base.jsonl"), dir.join("slow.jsonl"));
    mk(&base, 50_000_000);
    mk(&slow, 100_000_000); // 2x slower: past 30% threshold and 5ms floor

    let out = Command::new(env!("CARGO_BIN_EXE_trace_diff"))
        .args([base.as_os_str(), slow.as_os_str()])
        .arg("mode=gate")
        .output()
        .expect("spawn trace_diff");
    assert_eq!(out.status.code(), Some(1), "gate must fail on a 2x-slowed span");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("span.min:surrogate_fit"), "flagged key missing:\n{stdout}");
    assert!(stdout.contains("slower by 100.0%"), "note missing:\n{stdout}");

    // The same pair in warn mode exits zero but still prints the delta.
    let out = Command::new(env!("CARGO_BIN_EXE_trace_diff"))
        .args([base.as_os_str(), slow.as_os_str()])
        .output()
        .expect("spawn trace_diff");
    assert!(out.status.success(), "warn mode must exit 0");
}

#[test]
fn perf_baseline_results_are_deterministic_and_self_diff_is_clean() {
    let dir = scratch("perf");
    let exe = env!("CARGO_BIN_EXE_perf_baseline");
    let small = ["repeats=2", "iters=16", "workers=1"];
    let (a, b) = (dir.join("a.json"), dir.join("b.json"));

    let out = Command::new(exe)
        .args(small)
        .arg(format!("write={}", a.display()))
        .current_dir(&dir)
        .output()
        .expect("spawn perf_baseline");
    assert!(out.status.success(), "first run failed: {}", String::from_utf8_lossy(&out.stderr));

    // Second run diffs against the first under gate mode: identical
    // results (byte-for-byte) and no wall regressions expected.
    let out = Command::new(exe)
        .args(small)
        .arg(format!("write={}", b.display()))
        .arg(format!("against={}", a.display()))
        .arg("mode=gate")
        .current_dir(&dir)
        .output()
        .expect("spawn perf_baseline");
    assert!(
        out.status.success(),
        "self-diff gate failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("deterministic results identical"));

    // The "results" block is byte-identical across the two artifacts.
    let results_bytes = |path: &Path| {
        let value: Value =
            serde_json::from_str(&std::fs::read_to_string(path).expect("artifact readable"))
                .expect("artifact parses");
        serde_json::to_string(lookup(&value, "results").expect("results block"))
            .expect("results serialize")
    };
    assert_eq!(results_bytes(&a), results_bytes(&b), "results must be byte-identical");
}

#[test]
fn trace_validate_rejects_structural_violations_with_line_numbers() {
    let dir = scratch("validate");
    let exe = env!("CARGO_BIN_EXE_trace_validate");
    let run = |name: &str, text: &str| {
        let path = dir.join(name);
        std::fs::write(&path, text).expect("write journal");
        let out = Command::new(exe).arg(path.as_os_str()).output().expect("spawn trace_validate");
        (out.status.code(), String::from_utf8_lossy(&out.stderr).to_string())
    };
    let meta = "{\"type\":\"meta\",\"version\":1,\"source\":\"unit\"}\n";

    // Truncation: a child closed but its parent never did.
    let (code, stderr) = run(
        "truncated.jsonl",
        &format!(
            "{meta}{}",
            "{\"type\":\"span\",\"name\":\"fit\",\"parent\":\"session\",\"depth\":1,\
             \"dur_nanos\":5,\"thread\":0,\"seq\":1}\n"
        ),
    );
    assert_eq!(code, Some(1), "truncated journal must fail: {stderr}");
    assert!(stderr.contains("parent never did"), "{stderr}");

    // Parent mismatch: recorded parent is not the span that closed above.
    let (code, stderr) = run(
        "mismatch.jsonl",
        &format!(
            "{meta}{}{}",
            "{\"type\":\"span\",\"name\":\"fit\",\"parent\":\"ghost\",\"depth\":1,\
             \"dur_nanos\":5,\"thread\":0,\"seq\":1}\n",
            "{\"type\":\"span\",\"name\":\"session\",\"parent\":null,\"depth\":0,\
             \"dur_nanos\":9,\"thread\":0,\"seq\":2}\n"
        ),
    );
    assert_eq!(code, Some(1), "parent mismatch must fail: {stderr}");
    assert!(stderr.contains(":3:") && stderr.contains("records parent 'ghost'"), "{stderr}");

    // Backwards counter across flushes.
    let (code, stderr) = run(
        "backwards.jsonl",
        &format!(
            "{meta}{}{}",
            "{\"type\":\"counter\",\"name\":\"sim.evals\",\"value\":9,\"seq\":1}\n",
            "{\"type\":\"counter\",\"name\":\"sim.evals\",\"value\":3,\"seq\":2}\n"
        ),
    );
    assert_eq!(code, Some(1), "backwards counter must fail: {stderr}");
    assert!(stderr.contains("went backwards"), "{stderr}");

    // A sound journal still passes with the structural pass on.
    let (code, stderr) = run(
        "sound.jsonl",
        &format!(
            "{meta}{}{}",
            "{\"type\":\"span\",\"name\":\"session\",\"parent\":null,\"depth\":0,\
             \"dur_nanos\":9,\"thread\":0,\"seq\":1}\n",
            "{\"type\":\"counter\",\"name\":\"sim.evals\",\"value\":3,\"seq\":2}\n"
        ),
    );
    assert_eq!(code, Some(0), "sound journal must pass: {stderr}");
}
