//! Golden regression test for the committed `BENCH_perf.json`: re-runs
//! the perf-baseline tuning matrix in-process and checks the
//! deterministic `results` block bit-for-bit against the committed
//! artifact. Guards the GP/acquisition hot-path optimizations (batched
//! scoring, incremental Cholesky) — any numeric drift in an optimizer
//! shows up here as a changed `best_improvement` before CI ever reaches
//! the slower release-binary diff.
//!
//! Worker counts 1, 2, and 8 must all reproduce the same cell results:
//! the artifact is scheduling-invariant by design. Cache counters are
//! only exactly reproducible at `workers=1` (concurrent sessions can
//! race the shared cache and both compute a missing entry), so the
//! counter comparison is restricted to the single-worker run.

use dbtune_bench::artifact::{load_json_file, lookup, lookup_path};
use dbtune_bench::{run_tuning_grid, GridOpts, TuningCell};
use dbtune_core::optimizer::OptimizerKind;
use dbtune_dbsim::Workload;
use serde::Value;
use std::path::Path;

/// Mirror of the `perf_baseline` driver's fixed matrix and settings
/// (MATRIX / KNOBS / SEED there). Keep in sync — the committed
/// `BENCH_perf.json` is defined by that driver.
const MATRIX: [(Workload, OptimizerKind); 4] = [
    (Workload::Job, OptimizerKind::VanillaBo),
    (Workload::Job, OptimizerKind::Smac),
    (Workload::Sysbench, OptimizerKind::Tpe),
    (Workload::Tpcc, OptimizerKind::Ga),
];
const KNOBS: usize = 12;
const SEED: u64 = 42;
const ITERS: usize = 60;

fn committed_baseline() -> Value {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_perf.json");
    load_json_file(&path).expect("committed BENCH_perf.json loads")
}

fn golden_cells(baseline: &Value) -> Vec<(String, String, f64)> {
    lookup_path(baseline, &["results", "cells"])
        .and_then(Value::as_array)
        .expect("results.cells present")
        .iter()
        .map(|cell| {
            let get_str = |k: &str| {
                lookup(cell, k)
                    .and_then(Value::as_str)
                    .unwrap_or_else(|| panic!("cell field {k} missing"))
                    .to_string()
            };
            let best = lookup(cell, "best_improvement")
                .and_then(Value::as_f64)
                .expect("cell best_improvement present");
            (get_str("workload"), get_str("optimizer"), best)
        })
        .collect()
}

fn run_matrix(workers: usize) -> (Vec<f64>, dbtune_bench::ExecReport) {
    let cells: Vec<TuningCell> = MATRIX
        .iter()
        .map(|&(workload, opt_kind)| TuningCell {
            workload,
            selected: (0..KNOBS).collect(),
            opt_kind,
            iters: ITERS,
            seed: SEED,
        })
        .collect();
    let opts = GridOpts {
        workers,
        cache: true,
        noise_seed: SEED,
        faults: dbtune_dbsim::FaultPlan::disabled(),
        retry: dbtune_core::RetryPolicy::none(),
    };
    let (results, exec) = run_tuning_grid(&cells, &opts);
    (results.iter().map(|r| r.best_improvement()).collect(), exec)
}

#[test]
fn matrix_results_match_committed_baseline_across_worker_counts() {
    let baseline = committed_baseline();
    let golden = golden_cells(&baseline);
    assert_eq!(golden.len(), MATRIX.len(), "baseline matrix shape changed");

    for workers in [1usize, 2, 8] {
        let (best, exec) = run_matrix(workers);
        for (i, ((workload, optimizer, expect), got)) in golden.iter().zip(&best).enumerate() {
            assert_eq!(workload, MATRIX[i].0.name(), "cell {i} workload order");
            assert_eq!(optimizer, MATRIX[i].1.label(), "cell {i} optimizer order");
            assert_eq!(
                expect.to_bits(),
                got.to_bits(),
                "workers={workers} cell {i} ({workload}/{optimizer}): \
                 best_improvement drifted from committed baseline ({expect} vs {got})"
            );
        }
        if workers == 1 {
            let counter = |k: &str| {
                lookup_path(&baseline, &["results", "counters", k])
                    .and_then(Value::as_u64)
                    .unwrap_or_else(|| panic!("baseline counter {k} missing"))
            };
            assert_eq!(exec.cache.hits, counter("exec.cache.hits"), "cache hits drifted");
            assert_eq!(exec.cache.misses, counter("exec.cache.misses"), "cache misses drifted");
            assert_eq!(exec.cache.entries, counter("exec.cache.entries"), "cache entries drifted");
        }
    }
}
