//! The memory profiler's read-only contract: latching memprof on must
//! not move a single result bit, at any worker count.
//!
//! Two angles:
//!
//! * **Cross-process** — `fig9_overhead` runs with `mem=on` and
//!   `mem=off` at workers 1/2/8; the `"results"` payloads must be
//!   byte-identical (the latch is process-global and one-way, so the
//!   off/on comparison needs separate processes).
//! * **In-process** — this test binary latches memprof, re-runs the
//!   perf-baseline tuning matrix, and checks every `best_improvement`
//!   bit-for-bit against the committed `BENCH_perf.json` (the same
//!   golden cells `perf_matrix_golden` checks *without* the latch).
//!   Running in its own integration-test binary keeps the latch from
//!   leaking into other tests.
//!
//! A journal taken under `mem=on` must also carry structurally valid
//! `mem` events — one per profiled span close, self ≤ total.

use dbtune_bench::artifact::{load_json_file, lookup, lookup_path};
use dbtune_bench::{run_tuning_grid, GridOpts, TuningCell};
use dbtune_core::optimizer::OptimizerKind;
use dbtune_core::telemetry::TraceEvent;
use dbtune_dbsim::Workload;
use serde::Value;
use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbtune_memprof_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs `fig9_overhead` at tiny scale and returns the canonical
/// serialization of its `"results"` payload (mirror of the
/// `telemetry_determinism` harness, plus the `mem=` flag).
fn run_fig9(dir: &Path, workers: usize, mem: &str, trace: Option<&Path>) -> String {
    let exe = env!("CARGO_BIN_EXE_fig9_overhead");
    let mut args = vec![
        "samples=120".to_string(),
        "iters=6".to_string(),
        "cache=on".to_string(),
        format!("workers={workers}"),
        format!("mem={mem}"),
    ];
    if let Some(t) = trace {
        args.push(format!("trace={}", t.display()));
    }
    let out = Command::new(exe).args(&args).current_dir(dir).output().expect("spawn fig9");
    assert!(
        out.status.success(),
        "fig9_overhead failed (workers={workers}, mem={mem})\n--- stderr ---\n{}",
        String::from_utf8_lossy(&out.stderr),
    );
    let text = std::fs::read_to_string(dir.join("results/fig9_overhead.json"))
        .expect("driver wrote results json");
    let value: Value = serde_json::from_str(&text).expect("valid JSON");
    let results = lookup(&value, "results").expect("top-level 'results'");
    serde_json::to_string(results).expect("serialize results")
}

#[test]
fn results_identical_with_memprof_on_and_off_across_worker_counts() {
    let dir = scratch("onoff");
    let baseline = run_fig9(&dir, 1, "off", None);
    for workers in [1usize, 2, 8] {
        let off = run_fig9(&dir, workers, "off", None);
        assert_eq!(baseline, off, "results drifted across worker counts (workers={workers})");
        let on = run_fig9(&dir, workers, "on", None);
        assert_eq!(
            baseline, on,
            "latching memprof changed the results payload (workers={workers})"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profiled_journal_carries_sound_mem_events() {
    let dir = scratch("journal");
    let trace = dir.join("trace.jsonl");
    run_fig9(&dir, 2, "on", Some(&trace));

    let text = std::fs::read_to_string(&trace).expect("journal written");
    let journal = dbtune_trace::load_journal_str(&text).expect("journal loads");
    let violations = dbtune_trace::check_structure(&journal.events);
    assert!(violations.is_empty(), "profiled journal has violations: {violations:?}");

    let mut mem_events = 0u64;
    let mut span_events = 0u64;
    for jl in &journal.events {
        match &jl.event {
            TraceEvent::Mem {
                name, self_bytes, self_allocs, total_bytes, total_allocs, ..
            } => {
                mem_events += 1;
                assert!(
                    self_bytes <= total_bytes && self_allocs <= total_allocs,
                    "mem '{name}' self exceeds total"
                );
            }
            TraceEvent::Span { .. } => span_events += 1,
            _ => {}
        }
    }
    assert!(mem_events > 0, "mem=on journal has no mem events");
    // The whole run was latched, so every span close carried its frame.
    assert_eq!(mem_events, span_events, "one mem event per span close when latched");

    // The bytes-weighted projection must reconstruct (frames mirror the
    // span stack exactly when the latch covers the whole run).
    let mem_spans = dbtune_trace::mem_to_span_events(&journal.events);
    assert_eq!(mem_spans.len() as u64, mem_events);
    dbtune_trace::build_trees(&mem_spans).expect("mem stream reconstructs into trees");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mirror of the `perf_baseline` driver's fixed matrix (MATRIX / KNOBS /
/// SEED / iters there) — the same golden cells `perf_matrix_golden`
/// checks, here re-run with the allocator accounting live.
const MATRIX: [(Workload, OptimizerKind); 4] = [
    (Workload::Job, OptimizerKind::VanillaBo),
    (Workload::Job, OptimizerKind::Smac),
    (Workload::Sysbench, OptimizerKind::Tpe),
    (Workload::Tpcc, OptimizerKind::Ga),
];
const KNOBS: usize = 12;
const SEED: u64 = 42;
const ITERS: usize = 60;

#[test]
fn latched_matrix_matches_committed_baseline() {
    dbtune_obs::memprof::enable();
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_perf.json");
    let baseline = load_json_file(&path).expect("committed BENCH_perf.json loads");
    let golden = lookup_path(&baseline, &["results", "cells"])
        .and_then(Value::as_array)
        .expect("results.cells present");

    let cells: Vec<TuningCell> = MATRIX
        .iter()
        .map(|&(workload, opt_kind)| TuningCell {
            workload,
            selected: (0..KNOBS).collect(),
            opt_kind,
            iters: ITERS,
            seed: SEED,
        })
        .collect();
    let opts = GridOpts {
        workers: 1,
        cache: true,
        noise_seed: SEED,
        faults: dbtune_dbsim::FaultPlan::disabled(),
        retry: dbtune_core::RetryPolicy::none(),
    };
    let (results, _exec) = run_tuning_grid(&cells, &opts);

    assert_eq!(golden.len(), results.len(), "baseline matrix shape changed");
    for (i, (cell, result)) in golden.iter().zip(&results).enumerate() {
        let expect = lookup(cell, "best_improvement")
            .and_then(Value::as_f64)
            .expect("cell best_improvement present");
        assert_eq!(
            expect.to_bits(),
            result.best_improvement().to_bits(),
            "cell {i}: best_improvement drifted with memprof latched on"
        );
    }

    // And the accounting itself must have seen the run: a four-cell
    // tuning grid cannot execute without allocating.
    let stats = dbtune_obs::memprof::global_stats();
    assert!(stats.alloc_count > 0, "latched run recorded no allocations");
    assert!(stats.peak_bytes >= stats.live_bytes, "peak below live in snapshot");
}
