//! Smoke test: every figure/table driver must run end-to-end at tiny
//! scale, exit zero, and write `results/<name>.json` with the uniform
//! `{"results": …, "exec": …, "telemetry": …}` shape the executor port
//! and telemetry layer established.
//!
//! Each binary gets its own scratch CWD under the system temp dir, so
//! pool caches and result files never collide across (parallel) tests.

use dbtune_bench::artifact::lookup;
use serde::Value;
use std::path::Path;
use std::process::Command;

/// Tiny but non-degenerate scale; unknown keys are ignored by ExpArgs,
/// so one flag set serves all thirteen drivers.
const TINY: &[&str] = &[
    "samples=120",
    "iters=6",
    "seeds=1",
    "repeats=2",
    "runs=2",
    "pretrain=8",
    "folds=3",
    "workers=2",
    "cache=on",
];

fn run_smoke(exe: &str, json_name: &str) {
    let name = Path::new(exe).file_name().expect("exe name").to_string_lossy().to_string();
    let dir = std::env::temp_dir().join(format!("dbtune_smoke_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    let out = Command::new(exe).args(TINY).current_dir(&dir).output().expect("spawn driver");
    assert!(
        out.status.success(),
        "{name} exited with {:?}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr),
    );

    let path = dir.join("results").join(format!("{json_name}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{name} did not write {}: {e}", path.display()));
    let value: Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name} wrote invalid JSON: {e:?}"));

    lookup(&value, "results").unwrap_or_else(|| panic!("{name}: missing top-level 'results'"));
    let exec = lookup(&value, "exec").unwrap_or_else(|| panic!("{name}: missing top-level 'exec'"));
    for key in ["cache_enabled", "noise_seed"] {
        lookup(exec, key).unwrap_or_else(|| panic!("{name}: missing exec.{key}"));
    }
    let cache = lookup(exec, "cache").unwrap_or_else(|| panic!("{name}: missing exec.cache"));
    for key in ["hits", "misses", "entries"] {
        lookup(cache, key).unwrap_or_else(|| panic!("{name}: missing exec.cache.{key}"));
    }
    let tele = lookup(&value, "telemetry")
        .unwrap_or_else(|| panic!("{name}: missing top-level 'telemetry'"));
    for key in ["spans", "counters", "gauges", "histograms"] {
        lookup(tele, key).unwrap_or_else(|| panic!("{name}: missing telemetry.{key}"));
    }

    let _ = std::fs::remove_dir_all(&dir);
}

macro_rules! smoke {
    ($test:ident, $bin:literal, $json:literal) => {
        #[test]
        fn $test() {
            run_smoke(env!(concat!("CARGO_BIN_EXE_", $bin)), $json);
        }
    };
}

smoke!(fig3_runs, "fig3_knob_importance", "fig3_table6");
smoke!(fig4_runs, "fig4_sensitivity", "fig4_sensitivity");
smoke!(fig5_runs, "fig5_num_knobs", "fig5_num_knobs");
smoke!(fig6_runs, "fig6_incremental", "fig6_incremental");
smoke!(fig7_runs, "fig7_optimizers", "fig7_table7");
smoke!(fig8_runs, "fig8_heterogeneity", "fig8_heterogeneity");
smoke!(fig9_runs, "fig9_overhead", "fig9_overhead");
smoke!(fig10_runs, "fig10_surrogate_bench", "fig10_surrogate_bench");
smoke!(ablations_runs, "ablations", "ablations");
smoke!(table8_runs, "table8_transfer", "table8_transfer");
smoke!(table9_runs, "table9_surrogate_models", "table9_surrogates");
smoke!(workloads_report_runs, "workloads_report", "workloads_report");
smoke!(fig11_runs, "fig11_resilience", "fig11_resilience");
