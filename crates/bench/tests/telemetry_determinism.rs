//! The telemetry determinism contract: tracing must *observe*, never
//! perturb. A driver's `"results"` payload has to come out byte-identical
//! with the journal enabled or disabled, and across worker counts — and
//! every line a journal emits has to parse against the documented schema.
//!
//! Uses `fig9_overhead` because it is the driver whose results payload
//! was historically wall-clock-contaminated; it now carries only the
//! deterministic fields, and this test keeps it that way.

use dbtune_bench::artifact::lookup;
use dbtune_core::telemetry::{TraceEvent, SCHEMA_VERSION};
use serde::Value;
use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbtune_tele_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs `fig9_overhead` at tiny scale and returns the canonical
/// serialization of its `"results"` payload.
fn run_fig9(dir: &Path, workers: usize, trace: Option<&Path>) -> String {
    let exe = env!("CARGO_BIN_EXE_fig9_overhead");
    let mut args = vec![
        "samples=120".to_string(),
        "iters=6".to_string(),
        "cache=on".to_string(),
        format!("workers={workers}"),
    ];
    if let Some(t) = trace {
        args.push(format!("trace={}", t.display()));
    }
    let out = Command::new(exe).args(&args).current_dir(dir).output().expect("spawn fig9");
    assert!(
        out.status.success(),
        "fig9_overhead failed (workers={workers}, trace={trace:?})\n--- stderr ---\n{}",
        String::from_utf8_lossy(&out.stderr),
    );
    let text = std::fs::read_to_string(dir.join("results/fig9_overhead.json"))
        .expect("driver wrote results json");
    let value: Value = serde_json::from_str(&text).expect("valid JSON");
    let results = lookup(&value, "results").expect("top-level 'results'");
    serde_json::to_string(results).expect("serialize results")
}

#[test]
fn results_identical_with_and_without_trace_across_worker_counts() {
    let dir = scratch("determinism");
    let baseline = run_fig9(&dir, 1, None);
    for workers in [1usize, 2, 8] {
        let untraced = run_fig9(&dir, workers, None);
        assert_eq!(
            baseline, untraced,
            "results drifted across worker counts (workers={workers}, no trace)"
        );
        let trace = dir.join(format!("trace_w{workers}.jsonl"));
        let traced = run_fig9(&dir, workers, Some(&trace));
        assert_eq!(
            baseline, traced,
            "enabling the journal changed the results payload (workers={workers})"
        );
        assert!(trace.exists(), "journal file was not written (workers={workers})");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_lines_all_parse_against_the_schema() {
    let dir = scratch("schema");
    let trace = dir.join("trace.jsonl");
    run_fig9(&dir, 2, Some(&trace));

    let text = std::fs::read_to_string(&trace).expect("journal written");
    let mut kinds = std::collections::BTreeSet::new();
    let mut last_seq = 0u64;
    for (idx, line) in text.lines().enumerate() {
        let event = TraceEvent::parse_line(line)
            .unwrap_or_else(|e| panic!("journal line {}: {e}\n  {line}", idx + 1));
        // Round-trip: serialization must reproduce the line exactly
        // (stable field order is part of the schema).
        assert_eq!(event.to_jsonl(), line, "line {} does not round-trip", idx + 1);
        match &event {
            TraceEvent::Meta { version, source } => {
                assert_eq!(idx, 0, "meta event must be the first line");
                assert_eq!(*version, SCHEMA_VERSION);
                assert_eq!(source, "fig9_overhead");
            }
            TraceEvent::Span { seq, .. }
            | TraceEvent::Counter { seq, .. }
            | TraceEvent::Gauge { seq, .. }
            | TraceEvent::Hist { seq, .. }
            | TraceEvent::Cell { seq, .. }
            | TraceEvent::Mem { seq, .. }
            | TraceEvent::Diag { seq, .. } => {
                assert!(idx > 0, "first line must be meta");
                assert!(*seq > last_seq, "seq must be strictly increasing");
                last_seq = *seq;
            }
        }
        kinds.insert(event.kind());
    }
    // A tuning run must have produced at least these event kinds.
    for kind in ["meta", "span", "cell", "counter"] {
        assert!(kinds.contains(kind), "journal has no '{kind}' events; kinds seen: {kinds:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_validate_accepts_real_journals_and_rejects_garbage() {
    let dir = scratch("validate");
    let trace = dir.join("trace.jsonl");
    run_fig9(&dir, 2, Some(&trace));

    let exe = env!("CARGO_BIN_EXE_trace_validate");
    let ok = Command::new(exe).arg(&trace).output().expect("spawn trace_validate");
    assert!(
        ok.status.success(),
        "trace_validate rejected a real journal:\n{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert!(stdout.contains("OK"), "unexpected validator output: {stdout}");

    let bad = dir.join("bad.jsonl");
    std::fs::write(&bad, "{\"type\":\"span\",\"oops\":1}\nnot json at all\n").expect("write bad");
    let rejected = Command::new(exe).arg(&bad).output().expect("spawn trace_validate");
    assert_eq!(rejected.status.code(), Some(1), "garbage journal must exit 1");

    let missing = Command::new(exe).arg(dir.join("nope.jsonl")).output().expect("spawn");
    assert_eq!(missing.status.code(), Some(2), "missing file must exit 2");
    let _ = std::fs::remove_dir_all(&dir);
}
