//! The diag recorder's determinism contract, enforced end to end:
//!
//! 1. **Byte-identity with diagnostics on or off.** The recorder only
//!    observes — the optimum estimate and the surrogate's capture of
//!    its own prediction consume no randomness — so the quality
//!    matrix's tuning results must be bit-for-bit identical with
//!    `diag=on` and `diag=off`, at every worker count.
//! 2. **Scheduling-invariant summaries.** Folding the journals of
//!    `workers=1/2/8` runs must produce the same `"results"` block:
//!    journal line order differs under concurrency, per-session record
//!    streams and the fixed-matrix-order fold must not.
//! 3. **The committed baseline is reproducible.** The freshly folded
//!    block must equal `BENCH_quality.json`'s `results` block exactly —
//!    the same fold `diag_report` and `quality_baseline` apply to a
//!    real journal, reproducing the committed regret summaries.
//!
//! Everything lives in ONE test: `enable_diag` is a process-global
//! latch, so the diag-off phase must fully precede it, and the test
//! harness would otherwise race phases across threads.

use dbtune_bench::artifact::{load_json_file, lookup};
use dbtune_bench::{quality, run_tuning_grid, GridOpts};
use dbtune_core::telemetry;
use std::path::Path;

/// One matrix run; returns every session's score trace as bit patterns
/// (strict byte-identity, not tolerance comparison).
fn run_matrix(workers: usize, journal: Option<&Path>) -> Vec<Vec<u64>> {
    let tele = telemetry::global();
    if let Some(path) = journal {
        tele.enable_journal(path, "quality_determinism").expect("journal opens");
    }
    let cells = quality::quality_cells(quality::DEFAULT_ITERS);
    let opts = GridOpts {
        workers,
        cache: true,
        noise_seed: quality::SEED,
        faults: dbtune_dbsim::FaultPlan::disabled(),
        retry: dbtune_core::RetryPolicy::none(),
    };
    let (results, _) = run_tuning_grid(&cells, &opts);
    if journal.is_some() {
        tele.journal.flush();
        tele.journal.disable();
    }
    results.iter().map(|r| r.best_score_trace.iter().map(|v| v.to_bits()).collect()).collect()
}

fn fold_results(journal_path: &Path) -> String {
    let text = std::fs::read_to_string(journal_path).expect("journal readable");
    let journal = dbtune_trace::load_journal_str(&text).expect("journal loads");
    let results = quality::results_value(&journal).expect("journal folds into results");
    serde_json::to_string(&results).expect("results serialize")
}

#[test]
fn quality_matrix_is_byte_identical_with_diag_on_off_and_reproduces_baseline() {
    let scratch = std::env::temp_dir();

    // Phase 1: diag OFF — the reference trajectories. Must come first:
    // the diag gate latches on for the rest of the process.
    let reference = run_matrix(1, None);

    // Phase 2: diag ON at workers 1, 2, and 8, each with a journal.
    telemetry::global().enable_diag();
    let mut folded: Vec<String> = Vec::new();
    for workers in [1usize, 2, 8] {
        let path = scratch
            .join(format!("dbtune_quality_determinism_{}_{workers}.jsonl", std::process::id()));
        let traces = run_matrix(workers, Some(&path));
        assert_eq!(
            traces, reference,
            "workers={workers}: diag=on changed the tuning results — the recorder must \
             only observe"
        );
        folded.push(fold_results(&path));
        let _ = std::fs::remove_file(&path);
    }
    assert_eq!(folded[0], folded[1], "workers=1 vs 2: folded results differ");
    assert_eq!(folded[0], folded[2], "workers=1 vs 8: folded results differ");

    // Phase 3: the committed baseline reproduces exactly.
    let committed = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_quality.json");
    let baseline = load_json_file(&committed).expect("committed BENCH_quality.json loads");
    let baseline_results = lookup(&baseline, "results").expect("baseline has results");
    let baseline_fp = serde_json::to_string(baseline_results).expect("baseline results serialize");
    assert_eq!(
        folded[0], baseline_fp,
        "freshly folded quality results differ from committed BENCH_quality.json — \
         intended optimizer changes must regenerate the baseline in the same commit \
         (cargo run --release --bin quality_baseline)"
    );
}
