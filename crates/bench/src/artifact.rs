//! Shared artifact-loading helpers: the JSON files drivers write
//! (`results/*.json`, `BENCH_perf.json`) and the JSONL trace journals
//! they emit, loaded into the plain structs `dbtune-trace` analyzes.
//!
//! This is the JSON boundary the trace toolkit deliberately does not
//! cross: `dbtune-trace` stays std-only, and this module (which already
//! links the vendored `serde`/`serde_json` for driver output) does the
//! parsing.

use dbtune_trace::{JournalData, PerfBaseline};
use serde::Value;
use std::collections::BTreeMap;
use std::path::Path;

/// Field lookup in a parsed JSON object (the vendored `serde::Value`
/// keeps objects as insertion-ordered field lists, not maps).
pub fn lookup<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
    match value {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// [`lookup`] through a chain of keys (`["telemetry", "driver"]`).
pub fn lookup_path<'a>(value: &'a Value, path: &[&str]) -> Option<&'a Value> {
    path.iter().try_fold(value, |v, key| lookup(v, key))
}

/// Reads and parses a JSON artifact, with the path in every error.
pub fn load_json_file(path: &Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e:?}", path.display()))
}

/// Reads and strictly loads a JSONL trace journal (see
/// [`dbtune_trace::load_journal_str`]), with the path in every error.
pub fn load_journal(path: &Path) -> Result<JournalData, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    dbtune_trace::load_journal_str(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn u64_map(value: Option<&Value>, what: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut out = BTreeMap::new();
    let Some(value) = value else { return Ok(out) };
    let fields = value.as_object().ok_or_else(|| format!("{what} is not an object"))?;
    for (k, v) in fields {
        let v = v.as_u64().ok_or_else(|| format!("{what}.{k} is not a u64"))?;
        out.insert(k.clone(), v);
    }
    Ok(out)
}

fn f64_series(value: &Value, what: &str) -> Result<Vec<f64>, String> {
    value
        .as_array()
        .ok_or_else(|| format!("{what} is not an array"))?
        .iter()
        .map(|v| v.as_f64().ok_or_else(|| format!("{what} has a non-numeric entry")))
        .collect()
}

/// Parses a `BENCH_perf.json` value into the plain [`PerfBaseline`]
/// struct `dbtune_trace::diff_baselines` compares. The deterministic
/// `results` block is captured whole as a canonical-serialization
/// fingerprint, so any drift there — not just in the whitelisted
/// counters — flags the diff.
pub fn parse_perf_baseline(value: &Value) -> Result<PerfBaseline, String> {
    let results = lookup(value, "results").ok_or("BENCH_perf.json has no \"results\"")?;
    let timing = lookup(value, "timing").ok_or("BENCH_perf.json has no \"timing\"")?;
    let mut baseline = PerfBaseline {
        counters: u64_map(lookup(results, "counters"), "results.counters")?,
        results_fingerprint: serde_json::to_string(results)
            .map_err(|e| format!("cannot serialize results fingerprint: {e:?}"))?,
        wall_secs: f64_series(
            lookup(timing, "wall_secs").ok_or("timing has no \"wall_secs\"")?,
            "timing.wall_secs",
        )?,
        ..Default::default()
    };
    if let Some(phases) = lookup(timing, "phases") {
        let fields = phases.as_object().ok_or("timing.phases is not an object")?;
        for (name, series) in fields {
            baseline
                .phase_secs
                .insert(name.clone(), f64_series(series, &format!("timing.phases.{name}"))?);
        }
    }
    if let Some(spans) = lookup(timing, "spans") {
        let fields = spans.as_object().ok_or("timing.spans is not an object")?;
        for (name, span) in fields {
            let min = lookup(span, "min_nanos")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("timing.spans.{name}.min_nanos missing"))?;
            baseline.span_min_nanos.insert(name.clone(), min);
        }
    }
    // Memory columns arrived after the first committed baselines —
    // optional, so pre-memprof artifacts still parse (and the diff's
    // one-sided rule keeps the comparison silent when a side is empty).
    if let Some(mem) = lookup(timing, "mem") {
        if let Some(peak) = lookup(mem, "peak_bytes") {
            baseline.mem_peak_bytes = f64_series(peak, "timing.mem.peak_bytes")?;
        }
        if let Some(allocs) = lookup(mem, "alloc_count") {
            baseline.mem_alloc_counts = f64_series(allocs, "timing.mem.alloc_count")?;
        }
    }
    Ok(baseline)
}

/// The comparable content of one `BENCH_quality.json` artifact (the
/// regret-curve sibling of [`PerfBaseline`]). Everything here is
/// deterministic, so the diff rule is exact equality throughout — the
/// fingerprint decides, the per-session fields exist to name what moved.
#[derive(Clone, Debug, Default)]
pub struct QualityBaseline {
    /// Canonical serialization of the whole `results` block.
    pub results_fingerprint: String,
    /// Per-session headline numbers: label → (final best, final simple
    /// regret, final cumulative regret).
    pub sessions: BTreeMap<String, (f64, Option<f64>, Option<f64>)>,
}

fn opt_f64(value: Option<&Value>, what: &str) -> Result<Option<f64>, String> {
    match value {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v.as_f64().map(Some).ok_or_else(|| format!("{what} is not a number")),
    }
}

/// Parses a `BENCH_quality.json` value into the plain
/// [`QualityBaseline`] struct the `quality_baseline` driver compares
/// (mirror of [`parse_perf_baseline`]).
pub fn parse_quality_baseline(value: &Value) -> Result<QualityBaseline, String> {
    let results = lookup(value, "results").ok_or("BENCH_quality.json has no \"results\"")?;
    let mut baseline = QualityBaseline {
        results_fingerprint: serde_json::to_string(results)
            .map_err(|e| format!("cannot serialize results fingerprint: {e:?}"))?,
        ..Default::default()
    };
    let sessions = lookup(results, "sessions")
        .and_then(Value::as_array)
        .ok_or("results has no \"sessions\" array")?;
    for (i, session) in sessions.iter().enumerate() {
        let label = lookup(session, "session")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("results.sessions[{i}].session missing"))?;
        let best = lookup(session, "final_best")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("results.sessions[{i}].final_best missing"))?;
        let regret = opt_f64(lookup(session, "final_regret"), "final_regret")?;
        let cum = opt_f64(lookup(session, "final_cum_regret"), "final_cum_regret")?;
        baseline.sessions.insert(label.to_string(), (best, regret, cum));
    }
    Ok(baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "schema": 1,
        "results": {
            "cells": [{"workload": "job", "optimizer": "vanilla-bo", "best_improvement": 0.31}],
            "counters": {"exec.cache.hits": 12, "sim.evals": 88}
        },
        "timing": {
            "wall_secs": [1.5, 1.25],
            "phases": {"surrogate_fit_secs": [0.5, 0.4]},
            "spans": {"suggest": {"count": 40, "min_nanos": 900, "p50_nanos": 1000, "p99_nanos": 2000}},
            "mem": {"peak_bytes": [5000000, 5100000], "alloc_count": [120000, 120000]}
        }
    }"#;

    #[test]
    fn parses_the_documented_shape() {
        let value: Value = serde_json::from_str(SAMPLE).expect("sample parses");
        let b = parse_perf_baseline(&value).expect("baseline parses");
        assert_eq!(b.counters["exec.cache.hits"], 12);
        assert_eq!(b.counters["sim.evals"], 88);
        assert_eq!(b.wall_secs, vec![1.5, 1.25]);
        assert_eq!(b.phase_secs["surrogate_fit_secs"], vec![0.5, 0.4]);
        assert_eq!(b.span_min_nanos["suggest"], 900);
        assert_eq!(b.mem_peak_bytes, vec![5_000_000.0, 5_100_000.0]);
        assert_eq!(b.mem_alloc_counts, vec![120_000.0, 120_000.0]);
        assert!(b.results_fingerprint.contains("best_improvement"));
    }

    #[test]
    fn artifacts_without_mem_columns_still_parse() {
        let value: Value = serde_json::from_str(
            r#"{"results": {"counters": {}}, "timing": {"wall_secs": [1.0]}}"#,
        )
        .expect("sample JSON parses");
        let b = parse_perf_baseline(&value).expect("pre-memprof artifact parses");
        assert!(b.mem_peak_bytes.is_empty());
        assert!(b.mem_alloc_counts.is_empty());
    }

    #[test]
    fn fingerprint_is_insensitive_to_timing_but_not_results() {
        let a: Value = serde_json::from_str(SAMPLE).expect("parses");
        let mut faster = serde_json::from_str::<Value>(SAMPLE).expect("parses");
        if let Some(Value::Object(timing)) = match &mut faster {
            Value::Object(fields) => fields.iter_mut().find(|(k, _)| k == "timing").map(|(_, v)| v),
            _ => None,
        } {
            timing.retain(|(k, _)| k != "phases");
        }
        let fa = parse_perf_baseline(&a).expect("baseline artifact parses").results_fingerprint;
        let fb = parse_perf_baseline(&faster).expect("artifact parses").results_fingerprint;
        assert_eq!(fa, fb, "timing changes must not move the results fingerprint");
    }

    #[test]
    fn missing_sections_are_named_in_errors() {
        let value: Value = serde_json::from_str(r#"{"results": {}}"#).expect("sample JSON parses");
        assert!(parse_perf_baseline(&value).expect_err("must be rejected").contains("timing"));
        let value: Value =
            serde_json::from_str(r#"{"timing": {"wall_secs": []}}"#).expect("sample JSON parses");
        assert!(parse_perf_baseline(&value).expect_err("must be rejected").contains("results"));
    }

    const QUALITY_SAMPLE: &str = r#"{
        "schema": 1,
        "results": {
            "sessions": [
                {"session": "smac/job/s42", "final_best": -1.25,
                 "final_regret": 0.05, "final_cum_regret": 4.5},
                {"session": "random/job/s42", "final_best": -1.5,
                 "final_regret": null, "final_cum_regret": null}
            ]
        }
    }"#;

    #[test]
    fn parses_the_quality_shape() {
        let value: Value = serde_json::from_str(QUALITY_SAMPLE).expect("sample parses");
        let b = parse_quality_baseline(&value).expect("quality baseline parses");
        assert_eq!(b.sessions.len(), 2);
        assert_eq!(b.sessions["smac/job/s42"], (-1.25, Some(0.05), Some(4.5)));
        assert_eq!(b.sessions["random/job/s42"], (-1.5, None, None));
        assert!(b.results_fingerprint.contains("final_best"));
    }

    #[test]
    fn quality_errors_name_the_missing_piece() {
        let value: Value = serde_json::from_str(r#"{"schema": 1}"#).expect("parses");
        assert!(parse_quality_baseline(&value).expect_err("rejected").contains("results"));
        let value: Value = serde_json::from_str(r#"{"results": {}}"#).expect("parses");
        assert!(parse_quality_baseline(&value).expect_err("rejected").contains("sessions"));
        let value: Value = serde_json::from_str(r#"{"results": {"sessions": [{"session": "x"}]}}"#)
            .expect("parses");
        assert!(parse_quality_baseline(&value).expect_err("rejected").contains("final_best"));
    }

    #[test]
    fn lookup_path_walks_nested_objects() {
        let value: Value = serde_json::from_str(SAMPLE).expect("sample JSON parses");
        let hits = lookup_path(&value, &["results", "counters", "exec.cache.hits"]);
        assert_eq!(hits.and_then(Value::as_u64), Some(12));
        assert!(lookup_path(&value, &["results", "nope"]).is_none());
    }
}
