// Driver binary: exempt from the unwrap ban (lint rule E1 and its clippy
// twin unwrap_used) — a panic here aborts one experiment run, not a
// library caller.
#![allow(clippy::unwrap_used)]
//! Figure 10 + the §8 speedup claim: tuning on the surrogate benchmark.
//!
//! Builds the SYSBENCH medium-space benchmark (offline collection +
//! random-forest surrogate), runs every optimizer against it for several
//! sessions, and reports (a) best-performance-over-iteration series that
//! should reproduce the live ordering (SMAC and mixed-kernel BO on top),
//! and (b) the replay-vs-surrogate speedup ledger (paper: 150–311×).
//!
//! Arguments: `samples=1200 iters=120 runs=5 workers= cache=on`
//! (paper: 6250/200/10). The offline collection stays sequential (it
//! consumes the live simulator); the tuning sessions then share one
//! trained surrogate — immutably, via the executor — so the speedup
//! ledger is computed from the cache counters and the grid's wall
//! clock rather than from mutable per-benchmark accounting.

use dbtune_bench::{
    full_pool, pct, print_exec_summary, print_table, save_json_with_exec, top_k_knobs, ExpArgs,
    GridOpts,
};
use dbtune_benchmark::collect::{collect_samples, Dataset};
use dbtune_benchmark::objective::SurrogateBenchmark;
use dbtune_core::exec::{run_grid, CachedObjective};
use dbtune_core::importance::MeasureKind;
use dbtune_core::optimizer::OptimizerKind;
use dbtune_core::space::TuningSpace;
use dbtune_core::tuner::{run_session, SessionConfig};
use dbtune_dbsim::{
    DbSimulator, Hardware, Objective, Workload, EVAL_SECONDS, METRICS_DIM, RESTART_SECONDS,
};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Run {
    optimizer: String,
    median_trace: Vec<f64>,
    best_improvement: f64,
}

fn main() {
    let _trace_flush = dbtune_bench::flush_guard();
    let args = ExpArgs::parse();
    let samples = args.get_usize("samples", 1200);
    let iters = args.get_usize("iters", 120);
    let runs = args.get_usize("runs", 5);

    let catalog = DbSimulator::new(Workload::Sysbench, Hardware::B, 0).catalog().clone();
    let pool = full_pool(Workload::Sysbench, samples, 7);
    let selected = top_k_knobs(MeasureKind::Shap, &catalog, &pool, 20, 11);
    let space = TuningSpace::with_default_base(&catalog, selected, Hardware::B);

    // Offline collection (LHS + optimizer-driven) and surrogate training.
    let mut sim = DbSimulator::new(Workload::Sysbench, Hardware::B, 70);
    let ds: Dataset = collect_samples(&mut sim, &space, samples, 8);
    let bench = SurrogateBenchmark::train(space.clone(), Objective::Throughput, &ds, 1);
    println!(
        "offline collection: {} evaluations = {:.1} simulated hours of workload replay",
        sim.n_evals(),
        sim.total_simulated_secs() / 3600.0
    );

    // Grid: (optimizer × run); every cell borrows the one trained
    // surrogate immutably through the cache adapter.
    let opts = GridOpts::from_args("fig10_surrogate_bench", &args, 3000);
    let mut grid: Vec<(OptimizerKind, u64)> = Vec::new();
    for &opt_kind in &OptimizerKind::PAPER {
        for run in 0..runs {
            grid.push((opt_kind, 3000 + run as u64));
        }
    }
    let cache = opts.make_cache();
    let t0 = Instant::now(); // lint: allow(D2) wall-clock benchmark report — timing is the deliverable
    let sessions = run_grid(&grid, opts.workers, |_, &(opt_kind, seed)| {
        let mut opt = opt_kind.build(space.space(), METRICS_DIM, seed);
        let mut obj = CachedObjective::new(&bench, cache.clone(), opts.noise_seed);
        run_session(
            &mut obj,
            &space,
            &mut opt,
            &SessionConfig { iterations: iters, lhs_init: 10, seed, ..Default::default() },
        )
    });
    let grid_wall_secs = t0.elapsed().as_secs_f64();
    let exec = opts.report(cache.as_ref());

    let mut results: Vec<Run> = Vec::new();
    for (opt_kind, chunk) in OptimizerKind::PAPER.iter().zip(sessions.chunks(runs)) {
        let traces: Vec<Vec<f64>> = chunk.iter().map(|r| r.improvement_trace()).collect();
        let median_trace: Vec<f64> = (0..iters)
            .map(|i| {
                let vals: Vec<f64> = traces.iter().map(|t| t[i]).collect();
                dbtune_bench::median(&vals)
            })
            .collect();
        let best = *median_trace.last().expect("nonempty");
        eprintln!("[{}] best improvement {}", opt_kind.label(), pct(best));
        results.push(Run {
            optimizer: opt_kind.label().to_string(),
            median_trace,
            best_improvement: best,
        });
    }

    println!("\n== Figure 10: tuning performance over the surrogate benchmark ==");
    let checkpoints: Vec<usize> =
        [0.25, 0.5, 0.75, 1.0].iter().map(|f| ((iters as f64 * f) as usize).max(1) - 1).collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let mut row = vec![r.optimizer.clone()];
            for &c in &checkpoints {
                row.push(pct(r.median_trace[c]));
            }
            row
        })
        .collect();
    let headers: Vec<String> = std::iter::once("Optimizer".to_string())
        .chain(checkpoints.iter().map(|c| format!("iter {}", c + 1)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(&header_refs, &rows);

    // Speedup ledger from the executor's counters: sessions × iterations
    // evaluations would each have cost a full replay + restart on the
    // live system; on the surrogate the whole grid took `grid_wall_secs`
    // (which also includes optimizer overhead, so the ratio is
    // conservative). Wall clock goes to stdout only — the JSON stays
    // byte-reproducible.
    let n_evals = {
        let counted = exec.cache.hits + exec.cache.misses;
        if counted > 0 {
            counted as usize
        } else {
            grid.len() * iters
        }
    };
    let replay_secs = n_evals as f64 * (EVAL_SECONDS + RESTART_SECONDS);
    println!(
        "\nSpeedup ledger: {} surrogate evaluations ({} unique after caching) in {:.2}s vs {:.0}s of simulated replay -> {:.0}x (paper: 150-311x end-to-end)",
        n_evals,
        exec.cache.entries,
        grid_wall_secs,
        replay_secs,
        if grid_wall_secs > 0.0 { replay_secs / grid_wall_secs } else { f64::INFINITY }
    );
    print_exec_summary(&exec);

    save_json_with_exec("fig10_surrogate_bench", &results, &exec);
}
