//! Figure 10 + the §8 speedup claim: tuning on the surrogate benchmark.
//!
//! Builds the SYSBENCH medium-space benchmark (offline collection +
//! random-forest surrogate), runs every optimizer against it for several
//! sessions, and reports (a) best-performance-over-iteration series that
//! should reproduce the live ordering (SMAC and mixed-kernel BO on top),
//! and (b) the replay-vs-surrogate speedup ledger (paper: 150–311×).
//!
//! Arguments: `samples=1200 iters=120 runs=5` (paper: 6250/200/10).

use dbtune_bench::{full_pool, pct, print_table, save_json, top_k_knobs, ExpArgs};
use dbtune_benchmark::collect::{collect_samples, Dataset};
use dbtune_benchmark::objective::SurrogateBenchmark;
use dbtune_core::importance::MeasureKind;
use dbtune_core::optimizer::OptimizerKind;
use dbtune_core::space::TuningSpace;
use dbtune_core::tuner::{run_session, SessionConfig};
use dbtune_dbsim::{DbSimulator, Hardware, Objective, Workload, METRICS_DIM};
use serde::Serialize;

#[derive(Serialize)]
struct Run {
    optimizer: String,
    median_trace: Vec<f64>,
    best_improvement: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let samples = args.get_usize("samples", 1200);
    let iters = args.get_usize("iters", 120);
    let runs = args.get_usize("runs", 5);

    let catalog = DbSimulator::new(Workload::Sysbench, Hardware::B, 0).catalog().clone();
    let pool = full_pool(Workload::Sysbench, samples, 7);
    let selected = top_k_knobs(MeasureKind::Shap, &catalog, &pool, 20, 11);
    let space = TuningSpace::with_default_base(&catalog, selected, Hardware::B);

    // Offline collection (LHS + optimizer-driven) and surrogate training.
    let mut sim = DbSimulator::new(Workload::Sysbench, Hardware::B, 70);
    let ds: Dataset = collect_samples(&mut sim, &space, samples, 8);
    let mut bench = SurrogateBenchmark::train(space.clone(), Objective::Throughput, &ds, 1);
    println!(
        "offline collection: {} evaluations = {:.1} simulated hours of workload replay",
        sim.n_evals(),
        sim.total_simulated_secs() / 3600.0
    );

    let mut results: Vec<Run> = Vec::new();
    for &opt_kind in &OptimizerKind::PAPER {
        let mut traces: Vec<Vec<f64>> = Vec::new();
        for run in 0..runs {
            let mut opt = opt_kind.build(space.space(), METRICS_DIM, 3000 + run as u64);
            let r = run_session(
                &mut bench,
                &space,
                &mut opt,
                &SessionConfig { iterations: iters, lhs_init: 10, seed: 3000 + run as u64, ..Default::default() },
            );
            traces.push(r.improvement_trace());
        }
        let median_trace: Vec<f64> = (0..iters)
            .map(|i| {
                let vals: Vec<f64> = traces.iter().map(|t| t[i]).collect();
                dbtune_bench::median(&vals)
            })
            .collect();
        let best = *median_trace.last().expect("nonempty");
        eprintln!("[{}] best improvement {}", opt_kind.label(), pct(best));
        results.push(Run {
            optimizer: opt_kind.label().to_string(),
            median_trace,
            best_improvement: best,
        });
    }

    println!("\n== Figure 10: tuning performance over the surrogate benchmark ==");
    let checkpoints: Vec<usize> =
        [0.25, 0.5, 0.75, 1.0].iter().map(|f| ((iters as f64 * f) as usize).max(1) - 1).collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let mut row = vec![r.optimizer.clone()];
            for &c in &checkpoints {
                row.push(pct(r.median_trace[c]));
            }
            row
        })
        .collect();
    let headers: Vec<String> = std::iter::once("Optimizer".to_string())
        .chain(checkpoints.iter().map(|c| format!("iter {}", c + 1)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(&header_refs, &rows);

    let report = bench.speedup_report();
    println!(
        "\nSpeedup ledger: {} surrogate evaluations in {:.2}s vs {:.0}s of simulated replay -> {:.0}x (paper: 150–311x end-to-end)",
        report.n_evals, report.surrogate_secs, report.replay_secs, report.speedup
    );

    save_json("fig10_surrogate_bench", &results);
}
