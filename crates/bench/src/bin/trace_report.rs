// Driver binary: exempt from the unwrap ban (lint rule E1 and its clippy
// twin unwrap_used) — a panic here aborts one experiment run, not a
// library caller.
#![allow(clippy::unwrap_used)]
//! Renders a trace journal as a human-readable span-tree report and
//! exports it for external viewers: a collapsed-stack file
//! (`<journal>.folded`, flamegraph-compatible) and a Chrome
//! `trace_event` file (`<journal>.chrome.json`, opens in
//! `chrome://tracing` or Perfetto).
//!
//! Usage: `trace_report <journal.jsonl> [out=<dir>]`
//!
//! The report shows the *merged* span tree (all occurrences of the same
//! root→…→name path folded together, across threads and repeats) with
//! total and **self** time per path — self time is a span's duration
//! minus its direct children's, so the column sums exactly to the
//! instrumented wall time. Exit codes: 0 ok, 1 structurally invalid
//! journal, 2 usage or I/O error.
//!
//! Journals with `mem` events (memprof latched on, see
//! docs/observability.md) additionally get a top-allocating-spans table
//! and a **bytes-weighted** collapsed-stack file (`<journal>.mem.folded`)
//! where frame width is allocated bytes instead of nanoseconds.

use dbtune_bench::artifact::load_journal;
use dbtune_trace::{
    build_trees, chrome_trace, collapsed_stacks, mem_to_span_events, merge_paths, MemSummary,
    MergedNode,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut journal_path = None;
    let mut out_dir = None;
    for arg in std::env::args().skip(1) {
        if let Some(dir) = arg.strip_prefix("out=") {
            out_dir = Some(PathBuf::from(dir));
        } else if journal_path.is_none() {
            journal_path = Some(PathBuf::from(arg));
        } else {
            eprintln!("usage: trace_report <journal.jsonl> [out=<dir>]");
            return ExitCode::from(2);
        }
    }
    let Some(journal_path) = journal_path else {
        eprintln!("usage: trace_report <journal.jsonl> [out=<dir>]");
        return ExitCode::from(2);
    };

    let journal = match load_journal(&journal_path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("trace_report: {e}");
            return ExitCode::from(2);
        }
    };
    let trees = match build_trees(&journal.events) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_report: {}: {e}", journal_path.display());
            return ExitCode::from(1);
        }
    };

    let merged = merge_paths(&trees);
    let roots_total: u64 = trees.iter().map(|t| t.total_nanos()).sum();
    println!("journal : {} (source: {})", journal_path.display(), journal.source);
    println!("events  : {}", journal.events.len());
    println!(
        "threads : {} ({} root spans, {:.3} s instrumented)",
        trees.len(),
        trees.iter().map(|t| t.roots.len()).sum::<usize>(),
        roots_total as f64 / 1e9,
    );
    println!();
    println!("{:<42} {:>8} {:>12} {:>12} {:>6}", "span path", "count", "total", "self", "self%");
    print_merged(&merged, "", roots_total);
    let self_total = merged.deep_self_nanos();
    println!();
    println!(
        "self-time sum: {:.3} s of {:.3} s instrumented ({:.2}%)",
        self_total as f64 / 1e9,
        roots_total as f64 / 1e9,
        if roots_total > 0 { self_total as f64 / roots_total as f64 * 100.0 } else { 100.0 },
    );

    // Memory attribution (present only when the run had memprof latched
    // on): per-span-name allocation totals, self-sorted so churn sources
    // top the table.
    let mut mem: BTreeMap<&str, MemSummary> = BTreeMap::new();
    for jl in &journal.events {
        if let dbtune_core::telemetry::TraceEvent::Mem {
            name,
            self_bytes,
            self_allocs,
            total_bytes,
            total_allocs,
            ..
        } = &jl.event
        {
            let m = mem.entry(name.as_str()).or_default();
            m.closes += 1;
            m.self_bytes += self_bytes;
            m.self_allocs += self_allocs;
            m.total_bytes += total_bytes;
            m.total_allocs += total_allocs;
        }
    }
    if !mem.is_empty() {
        let mut rows: Vec<(&str, MemSummary)> = mem.into_iter().collect();
        rows.sort_by(|a, b| b.1.self_bytes.cmp(&a.1.self_bytes).then(a.0.cmp(b.0)));
        println!();
        println!(
            "{:<24} {:>8} {:>12} {:>12} {:>12} {:>12}",
            "top allocating spans",
            "closes",
            "self bytes",
            "self allocs",
            "total bytes",
            "total allocs"
        );
        for (name, m) in rows.iter().take(10) {
            println!(
                "{name:<24} {:>8} {:>12} {:>12} {:>12} {:>12}",
                m.closes,
                format_bytes(m.self_bytes),
                m.self_allocs,
                format_bytes(m.total_bytes),
                m.total_allocs,
            );
        }
    }

    let stem = journal_path.file_stem().map(|s| s.to_string_lossy().to_string());
    let stem = stem.unwrap_or_else(|| "trace".to_string());
    let dir =
        out_dir.unwrap_or_else(|| journal_path.parent().unwrap_or(Path::new(".")).to_path_buf());
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("trace_report: cannot create {}: {e}", dir.display());
        return ExitCode::from(2);
    }
    let folded_path = dir.join(format!("{stem}.folded"));
    let chrome_path = dir.join(format!("{stem}.chrome.json"));
    let mut exports = vec![
        (folded_path, collapsed_stacks(&merged)),
        (chrome_path, chrome_trace(&trees, &journal.source)),
    ];
    // Bytes-weighted flamegraph: project `mem` events onto synthetic
    // spans whose duration IS their total allocated bytes, then reuse
    // the same tree/merge/collapse pipeline — frame width becomes bytes.
    let mem_spans = mem_to_span_events(&journal.events);
    if !mem_spans.is_empty() {
        // A journal whose latch flipped mid-run has spans that opened
        // unprofiled and closed without a `mem` event, so the mem stream
        // may not reconstruct — skip the export rather than fail (the
        // wall-time products above are unaffected).
        match build_trees(&mem_spans) {
            Ok(mem_trees) => exports.push((
                dir.join(format!("{stem}.mem.folded")),
                collapsed_stacks(&merge_paths(&mem_trees)),
            )),
            Err(e) => {
                eprintln!(
                    "trace_report: {}: mem stream does not reconstruct (latched mid-run?), \
                     skipping {stem}.mem.folded: {e}",
                    journal_path.display()
                );
            }
        }
    }
    for (path, content) in &exports {
        if let Err(e) = std::fs::write(path, content) {
            eprintln!("trace_report: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("[wrote {}]", path.display());
    }
    ExitCode::SUCCESS
}

/// Prints the merged tree depth-first with box-drawing indentation.
fn print_merged(node: &MergedNode, indent: &str, grand_total: u64) {
    let n = node.children.len();
    for (i, (name, child)) in node.children.iter().enumerate() {
        let last = i + 1 == n;
        let connector = if last { "└ " } else { "├ " };
        let pct = if grand_total > 0 {
            child.self_nanos as f64 / grand_total as f64 * 100.0
        } else {
            0.0
        };
        println!(
            "{:<42} {:>8} {:>12} {:>12} {:>5.1}%",
            format!("{indent}{connector}{name}"),
            child.count,
            format_nanos(child.total_nanos),
            format_nanos(child.self_nanos),
            pct,
        );
        let child_indent = format!("{indent}{}", if last { "  " } else { "│ " });
        print_merged(child, &child_indent, grand_total);
    }
}

/// Bytes with an adaptive binary unit.
fn format_bytes(bytes: u64) -> String {
    if bytes >= 1 << 30 {
        format!("{:.2}GiB", bytes as f64 / (1u64 << 30) as f64)
    } else if bytes >= 1 << 20 {
        format!("{:.2}MiB", bytes as f64 / (1u64 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1}KiB", bytes as f64 / (1u64 << 10) as f64)
    } else {
        format!("{bytes}B")
    }
}

/// Nanoseconds with an adaptive unit.
fn format_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}
