// Driver binary: exempt from the unwrap ban (lint rule E1 and its clippy
// twin unwrap_used) — a panic here aborts one experiment run, not a
// library caller.
#![allow(clippy::unwrap_used)]
//! Renders a trace journal as a human-readable span-tree report and
//! exports it for external viewers: a collapsed-stack file
//! (`<journal>.folded`, flamegraph-compatible) and a Chrome
//! `trace_event` file (`<journal>.chrome.json`, opens in
//! `chrome://tracing` or Perfetto).
//!
//! Usage: `trace_report <journal.jsonl> [out=<dir>]`
//!
//! The report shows the *merged* span tree (all occurrences of the same
//! root→…→name path folded together, across threads and repeats) with
//! total and **self** time per path — self time is a span's duration
//! minus its direct children's, so the column sums exactly to the
//! instrumented wall time. Exit codes: 0 ok, 1 structurally invalid
//! journal, 2 usage or I/O error.

use dbtune_bench::artifact::load_journal;
use dbtune_trace::{build_trees, chrome_trace, collapsed_stacks, merge_paths, MergedNode};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut journal_path = None;
    let mut out_dir = None;
    for arg in std::env::args().skip(1) {
        if let Some(dir) = arg.strip_prefix("out=") {
            out_dir = Some(PathBuf::from(dir));
        } else if journal_path.is_none() {
            journal_path = Some(PathBuf::from(arg));
        } else {
            eprintln!("usage: trace_report <journal.jsonl> [out=<dir>]");
            return ExitCode::from(2);
        }
    }
    let Some(journal_path) = journal_path else {
        eprintln!("usage: trace_report <journal.jsonl> [out=<dir>]");
        return ExitCode::from(2);
    };

    let journal = match load_journal(&journal_path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("trace_report: {e}");
            return ExitCode::from(2);
        }
    };
    let trees = match build_trees(&journal.events) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_report: {}: {e}", journal_path.display());
            return ExitCode::from(1);
        }
    };

    let merged = merge_paths(&trees);
    let roots_total: u64 = trees.iter().map(|t| t.total_nanos()).sum();
    println!("journal : {} (source: {})", journal_path.display(), journal.source);
    println!("events  : {}", journal.events.len());
    println!(
        "threads : {} ({} root spans, {:.3} s instrumented)",
        trees.len(),
        trees.iter().map(|t| t.roots.len()).sum::<usize>(),
        roots_total as f64 / 1e9,
    );
    println!();
    println!("{:<42} {:>8} {:>12} {:>12} {:>6}", "span path", "count", "total", "self", "self%");
    print_merged(&merged, "", roots_total);
    let self_total = merged.deep_self_nanos();
    println!();
    println!(
        "self-time sum: {:.3} s of {:.3} s instrumented ({:.2}%)",
        self_total as f64 / 1e9,
        roots_total as f64 / 1e9,
        if roots_total > 0 { self_total as f64 / roots_total as f64 * 100.0 } else { 100.0 },
    );

    let stem = journal_path.file_stem().map(|s| s.to_string_lossy().to_string());
    let stem = stem.unwrap_or_else(|| "trace".to_string());
    let dir =
        out_dir.unwrap_or_else(|| journal_path.parent().unwrap_or(Path::new(".")).to_path_buf());
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("trace_report: cannot create {}: {e}", dir.display());
        return ExitCode::from(2);
    }
    let folded_path = dir.join(format!("{stem}.folded"));
    let chrome_path = dir.join(format!("{stem}.chrome.json"));
    for (path, content) in [
        (&folded_path, collapsed_stacks(&merged)),
        (&chrome_path, chrome_trace(&trees, &journal.source)),
    ] {
        if let Err(e) = std::fs::write(path, content) {
            eprintln!("trace_report: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("[wrote {}]", path.display());
    }
    ExitCode::SUCCESS
}

/// Prints the merged tree depth-first with box-drawing indentation.
fn print_merged(node: &MergedNode, indent: &str, grand_total: u64) {
    let n = node.children.len();
    for (i, (name, child)) in node.children.iter().enumerate() {
        let last = i + 1 == n;
        let connector = if last { "└ " } else { "├ " };
        let pct = if grand_total > 0 {
            child.self_nanos as f64 / grand_total as f64 * 100.0
        } else {
            0.0
        };
        println!(
            "{:<42} {:>8} {:>12} {:>12} {:>5.1}%",
            format!("{indent}{connector}{name}"),
            child.count,
            format_nanos(child.total_nanos),
            format_nanos(child.self_nanos),
            pct,
        );
        let child_indent = format!("{indent}{}", if last { "  " } else { "│ " });
        print_merged(child, &child_indent, grand_total);
    }
}

/// Nanoseconds with an adaptive unit.
fn format_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}
