// Driver binary: exempt from the unwrap ban (lint rule E1 and its clippy
// twin unwrap_used) — a panic here aborts one experiment run, not a
// library caller.
#![allow(clippy::unwrap_used)]
//! Figure 3 + Table 6 + the §5.2 headline number.
//!
//! For JOB and SYSBENCH, rank all 197 knobs with each of the five
//! importance measurements, tune the top-5 and top-20 sets with vanilla
//! BO and DDPG, and report the median performance improvement per cell
//! (Figure 3), the average rank of each measurement across all cells
//! (Table 6), and SHAP's average improvement over the traditional
//! measurements (the paper reports +38.02%).
//!
//! Arguments: `samples=6250 iters=120 seeds=2 workers= cache=on`
//! (paper: 6250/200/3). Tuning sessions run on the parallel executor;
//! measurements that select overlapping knob sets share cached
//! evaluations.

use dbtune_bench::{
    full_pool, pct, print_exec_summary, print_table, run_tuning_grid, save_json_with_exec,
    top_k_knobs, ExpArgs, GridOpts, TuningCell,
};
use dbtune_core::importance::MeasureKind;
use dbtune_core::optimizer::OptimizerKind;
use dbtune_dbsim::{DbSimulator, Hardware, Workload};
use dbtune_linalg::stats::average_rank;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    workload: String,
    measure: String,
    top_k: usize,
    optimizer: String,
    improvements: Vec<f64>,
    median_improvement: f64,
}

fn main() {
    let _trace_flush = dbtune_bench::flush_guard();
    let args = ExpArgs::parse();
    let samples = args.get_usize("samples", 6250);
    let iters = args.get_usize("iters", 120);
    let seeds = args.get_usize("seeds", 2);

    let workloads = [Workload::Job, Workload::Sysbench];
    let optimizers = [OptimizerKind::VanillaBo, OptimizerKind::Ddpg];
    let catalog = DbSimulator::new(Workload::Job, Hardware::B, 0).catalog().clone();

    let opts = GridOpts::from_args("fig3_knob_importance", &args, 100);

    // Grid: (workload × measure × k × optimizer × seed), seed-major
    // innermost so each scenario's repeats are consecutive.
    let mut grid: Vec<TuningCell> = Vec::new();
    let mut scenarios: Vec<(Workload, MeasureKind, usize, OptimizerKind)> = Vec::new();
    for &wl in &workloads {
        let pool = full_pool(wl, samples, 7);
        for &measure in &MeasureKind::ALL {
            for &k in &[5usize, 20] {
                let selected = top_k_knobs(measure, &catalog, &pool, k, 11);
                eprintln!(
                    "[{} {} top-{}] knobs: {:?}",
                    wl.name(),
                    measure.label(),
                    k,
                    selected.iter().map(|&i| catalog.spec(i).name).collect::<Vec<_>>()
                );
                for &opt in &optimizers {
                    scenarios.push((wl, measure, k, opt));
                    for s in 0..seeds {
                        grid.push(TuningCell {
                            workload: wl,
                            selected: selected.clone(),
                            opt_kind: opt,
                            iters,
                            seed: 100 + s as u64,
                        });
                    }
                }
            }
        }
    }
    let (results, exec) = run_tuning_grid(&grid, &opts);

    let mut cells: Vec<Cell> = Vec::new();
    for ((wl, measure, k, opt), chunk) in scenarios.iter().zip(results.chunks(seeds)) {
        let improvements: Vec<f64> = chunk.iter().map(|r| r.best_improvement()).collect();
        let median_improvement = dbtune_bench::median(&improvements);
        eprintln!(
            "[{} {} top-{}] {} -> median improvement {}",
            wl.name(),
            measure.label(),
            k,
            opt.label(),
            pct(median_improvement)
        );
        cells.push(Cell {
            workload: wl.name().to_string(),
            measure: measure.label().to_string(),
            top_k: *k,
            optimizer: opt.label().to_string(),
            improvements,
            median_improvement,
        });
    }

    // ---- Figure 3: improvement per measurement, per scenario ----
    println!("\n== Figure 3: performance improvement when tuning top-5/top-20 knobs ==");
    for &wl in &workloads {
        for &k in &[5usize, 20] {
            for &opt in &optimizers {
                println!("\n-- {} / top-{} / {} --", wl.name(), k, opt.label());
                let rows: Vec<Vec<String>> = MeasureKind::ALL
                    .iter()
                    .map(|m| {
                        let cell = cells
                            .iter()
                            .find(|c| {
                                c.workload == wl.name()
                                    && c.measure == m.label()
                                    && c.top_k == k
                                    && c.optimizer == opt.label()
                            })
                            .expect("cell computed");
                        vec![m.label().to_string(), pct(cell.median_improvement)]
                    })
                    .collect();
                print_table(&["Measurement", "Median improvement"], &rows);
            }
        }
    }

    // ---- Table 6: overall average ranking ----
    // One "run" per (workload, k, optimizer) scenario; rank the five
    // measurements within each scenario by median improvement.
    let mut scenario_scores: Vec<Vec<f64>> = Vec::new();
    for &wl in &workloads {
        for &k in &[5usize, 20] {
            for &opt in &optimizers {
                let scores: Vec<f64> = MeasureKind::ALL
                    .iter()
                    .map(|m| {
                        cells
                            .iter()
                            .find(|c| {
                                c.workload == wl.name()
                                    && c.measure == m.label()
                                    && c.top_k == k
                                    && c.optimizer == opt.label()
                            })
                            .expect("cell computed")
                            .median_improvement
                    })
                    .collect();
                scenario_scores.push(scores);
            }
        }
    }
    let avg_rank = average_rank(&scenario_scores, true);
    println!("\n== Table 6: overall performance ranking (1 = best) ==");
    let rows: Vec<Vec<String>> = MeasureKind::ALL
        .iter()
        .zip(&avg_rank)
        .map(|(m, r)| vec![m.label().to_string(), format!("{r:.2}")])
        .collect();
    print_table(&["Measurement", "Avg rank"], &rows);

    // ---- §5.2 headline: SHAP vs traditional (Lasso, Gini) ----
    let mean_of = |label: &str| {
        let vals: Vec<f64> =
            cells.iter().filter(|c| c.measure == label).map(|c| c.median_improvement).collect();
        dbtune_linalg::stats::mean(&vals)
    };
    let shap = mean_of("SHAP");
    let trad = 0.5 * (mean_of("Lasso") + mean_of("Gini"));
    println!(
        "\nSHAP avg improvement {} vs traditional (Lasso/Gini) {} -> SHAP advantage {} (paper: +38.02%)",
        pct(shap),
        pct(trad),
        pct(shap - trad)
    );

    print_exec_summary(&exec);
    save_json_with_exec("fig3_table6", &cells, &exec);
}
