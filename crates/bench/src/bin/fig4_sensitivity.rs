// Driver binary: exempt from the unwrap ban (lint rule E1 and its clippy
// twin unwrap_used) — a panic here aborts one experiment run, not a
// library caller.
#![allow(clippy::unwrap_used)]
//! Figure 4: sensitivity of the importance measurements to the number of
//! training samples (SYSBENCH).
//!
//! Left panel: intersection-over-union of the top-5 knob set from a
//! random subsample against the full-pool baseline, averaged over
//! repeats. Right panel: R² of each measurement's underlying surrogate on
//! a held-out validation split.
//!
//! Arguments: `samples=1500 repeats=5 workers=` (paper: 6250/10).
//! Each (fraction × measurement × repeat) cell runs on the executor
//! with its own subsample RNG derived from [`cell_seed`], so results
//! are identical for any worker count. No simulator evaluations happen
//! here (the pool is precomputed), so the evaluation cache is unused.

use dbtune_bench::{
    full_pool, importance_scores, print_exec_summary, print_table, save_json_with_exec, ExpArgs,
    GridOpts, Pool,
};
use dbtune_core::exec::{cell_seed, run_grid};
use dbtune_core::importance::{top_k, ImportanceInput, MeasureKind};
use dbtune_dbsim::{DbSimulator, Hardware, KnobCatalog, Workload};
use dbtune_linalg::stats::{intersection_over_union, r_squared};
use dbtune_ml::{LassoRegression, RandomForest, RandomForestParams, Regressor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    measure: String,
    n_samples: usize,
    similarity: f64,
    r2: f64,
}

/// R² of the surrogate family backing a measurement, on a held-out split.
fn surrogate_r2(
    kind: MeasureKind,
    catalog: &KnobCatalog,
    pool: &Pool,
    train: &[usize],
    test: &[usize],
    seed: u64,
) -> f64 {
    let gather = |idx: &[usize]| -> (Vec<Vec<f64>>, Vec<f64>) {
        (idx.iter().map(|&i| pool.x[i].clone()).collect(), idx.iter().map(|&i| pool.y[i]).collect())
    };
    let (xt, yt) = gather(train);
    let (xv, yv) = gather(test);
    match kind {
        MeasureKind::Lasso => {
            // Unit-encoded linear model (matching the measurement).
            let enc = |rows: &[Vec<f64>]| -> Vec<Vec<f64>> {
                rows.iter()
                    .map(|r| {
                        r.iter().zip(catalog.specs()).map(|(v, s)| s.domain.to_unit(*v)).collect()
                    })
                    .collect()
            };
            let mut m = LassoRegression::new(0.01);
            m.fit(&enc(&xt), &yt);
            r_squared(&m.predict_batch(&enc(&xv)), &yv)
        }
        // Gini / fANOVA / ablation / SHAP all ride on the random forest.
        _ => {
            let kinds = xt[0]
                .iter()
                .zip(catalog.specs())
                .map(|(_, s)| match &s.domain {
                    dbtune_dbsim::knob::Domain::Cat { choices } => {
                        dbtune_ml::FeatureKind::Categorical { cardinality: choices.len() }
                    }
                    _ => dbtune_ml::FeatureKind::Continuous,
                })
                .collect();
            let mut rf = RandomForest::new(
                RandomForestParams { n_trees: 40, seed, ..Default::default() },
                kinds,
            );
            rf.fit(&xt, &yt);
            r_squared(&rf.predict_batch(&xv), &yv)
        }
    }
}

fn main() {
    let _trace_flush = dbtune_bench::flush_guard();
    let args = ExpArgs::parse();
    let samples = args.get_usize("samples", 1500);
    let repeats = args.get_usize("repeats", 5);

    let catalog = DbSimulator::new(Workload::Sysbench, Hardware::B, 0).catalog().clone();
    let pool = full_pool(Workload::Sysbench, samples, 7);

    // Baseline top-5 sets from the full pool.
    let baselines: Vec<(MeasureKind, Vec<usize>)> = MeasureKind::ALL
        .iter()
        .map(|&m| (m, top_k(&importance_scores(m, &catalog, &pool, 11), 5)))
        .collect();

    let fractions = [0.1, 0.2, 0.4, 0.6, 0.8];
    let opts = GridOpts::from_args("fig4_sensitivity", &args, 5);

    // Grid: (fraction × measurement × repeat). Each cell reshuffles the
    // pool with its own RNG, so cells are independent of each other and
    // of scheduling.
    struct Cell {
        measure: MeasureKind,
        baseline: Vec<usize>,
        n_sub: usize,
        rep: usize,
    }
    let mut grid: Vec<Cell> = Vec::new();
    let mut scenarios: Vec<(MeasureKind, usize)> = Vec::new();
    for &frac in &fractions {
        let n_sub = ((samples as f64) * frac) as usize;
        for &(measure, ref baseline) in &baselines {
            scenarios.push((measure, n_sub));
            for rep in 0..repeats {
                grid.push(Cell { measure, baseline: baseline.clone(), n_sub, rep });
            }
        }
    }

    let cell_results = run_grid(&grid, opts.workers, |i, cell| {
        let mut rng = StdRng::seed_from_u64(cell_seed(5, i));
        let mut idx: Vec<usize> = (0..samples).collect();
        idx.shuffle(&mut rng);
        let (train, test) = idx.split_at(cell.n_sub);
        let sub = Pool {
            workload: pool.workload.clone(),
            x: train.iter().map(|&i| pool.x[i].clone()).collect(),
            y: train.iter().map(|&i| pool.y[i]).collect(),
            metrics: Vec::new(),
            default_cfg: pool.default_cfg.clone(),
        };
        let m = cell.measure.build();
        let scores = m.scores(&ImportanceInput {
            specs: catalog.specs(),
            default: &sub.default_cfg,
            x: &sub.x,
            y: &sub.y,
            seed: cell.rep as u64,
        });
        let similarity = intersection_over_union(&top_k(&scores, 5), &cell.baseline);
        let test_cap = &test[..test.len().min(300)];
        let r2 = surrogate_r2(cell.measure, &catalog, &pool, train, test_cap, cell.rep as u64);
        (similarity, r2)
    });
    let exec = opts.report(None);

    let mut points: Vec<Point> = Vec::new();
    for ((measure, n_sub), chunk) in scenarios.iter().zip(cell_results.chunks(repeats)) {
        let sims: Vec<f64> = chunk.iter().map(|&(s, _)| s).collect();
        let r2s: Vec<f64> = chunk.iter().map(|&(_, r)| r).collect();
        points.push(Point {
            measure: measure.label().to_string(),
            n_samples: *n_sub,
            similarity: dbtune_linalg::stats::mean(&sims),
            r2: dbtune_linalg::stats::mean(&r2s),
        });
        let p = points.last().expect("point pushed just above for this scenario");
        eprintln!(
            "[{} n={}] similarity {:.3}, R2 {:.3}",
            measure.label(),
            n_sub,
            p.similarity,
            p.r2
        );
    }

    println!("\n== Figure 4 (left): top-5 similarity score vs #samples ==");
    let mut rows = Vec::new();
    for &m in &MeasureKind::ALL {
        let mut row = vec![m.label().to_string()];
        for &frac in &fractions {
            let n_sub = ((samples as f64) * frac) as usize;
            let p = points
                .iter()
                .find(|p| p.measure == m.label() && p.n_samples == n_sub)
                .expect("computed");
            row.push(format!("{:.3}", p.similarity));
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("Measurement".to_string())
        .chain(fractions.iter().map(|f| format!("n={}", ((samples as f64) * f) as usize)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(&header_refs, &rows);

    println!("\n== Figure 4 (right): surrogate R² vs #samples ==");
    let mut rows = Vec::new();
    for &m in &MeasureKind::ALL {
        let mut row = vec![m.label().to_string()];
        for &frac in &fractions {
            let n_sub = ((samples as f64) * frac) as usize;
            let p = points
                .iter()
                .find(|p| p.measure == m.label() && p.n_samples == n_sub)
                .expect("computed");
            row.push(format!("{:.3}", p.r2));
        }
        rows.push(row);
    }
    print_table(&header_refs, &rows);

    print_exec_summary(&exec);
    save_json_with_exec("fig4_sensitivity", &points, &exec);
}
