// Driver binary: exempt from the unwrap ban (lint rule E1 and its clippy
// twin unwrap_used) — a panic here aborts one experiment run, not a
// library caller.
#![allow(clippy::unwrap_used)]
//! Ablation studies for the design choices DESIGN.md §6 calls out —
//! beyond the paper's own tables, these justify the defaults this
//! implementation ships with:
//!
//! 1. SMAC's interleaved random configurations (on vs off);
//! 2. categorical encoding: Hamming kernel vs ordinal RBF on a
//!    heterogeneous space (the §6.2.2 mechanism, isolated);
//! 3. TuRBO trust-region restarts (on vs off);
//! 4. failure handling: worst-seen substitution vs discarding crashes;
//! 5. RGPE ensemble vs naive observation pooling on a *dissimilar*
//!    source (negative-transfer resistance).
//!
//! Arguments: `samples=6250 iters=120 seeds=2 workers= cache=on`.
//! The dissimilar-source session (a pre-step the negative-transfer
//! group depends on) stays sequential; the ten ablation variants then
//! fan out over the executor as a (variant × seed) grid.

use dbtune_bench::{
    full_pool, pct, print_exec_summary, print_table, save_json_with_exec, top_k_knobs, ExpArgs,
    GridOpts,
};
use dbtune_core::exec::{run_grid, CachedObjective, EvalCache};
use dbtune_core::importance::MeasureKind;
use dbtune_core::optimizer::{
    BoKind, BoOptimizer, Optimizer, Smac, SmacParams, Turbo, TurboParams,
};
use dbtune_core::space::TuningSpace;
use dbtune_core::transfer::{BaseKind, MappedOptimizer, RgpeOptimizer, SourceTask, SurrogateKind};
use dbtune_core::tuner::{run_session, FailurePolicy, SessionConfig, SessionResult};
use dbtune_dbsim::{DbSimulator, Hardware, KnobCatalog, Workload};
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct Finding {
    ablation: String,
    variant: String,
    median_improvement: f64,
}

#[allow(clippy::too_many_arguments)] // experiment knobs enumerated on purpose
fn session(
    wl: Workload,
    space: &TuningSpace,
    opt: &mut dyn Optimizer,
    iters: usize,
    seed: u64,
    policy: FailurePolicy,
    cache: Option<Arc<EvalCache>>,
    noise_seed: u64,
) -> SessionResult {
    let sim = DbSimulator::new(wl, Hardware::B, seed);
    let mut obj = CachedObjective::new(sim, cache, noise_seed);
    run_session(
        &mut obj,
        space,
        opt,
        &SessionConfig {
            iterations: iters,
            lhs_init: 10,
            seed,
            failure_policy: policy,
            ..Default::default()
        },
    )
}

fn main() {
    let _trace_flush = dbtune_bench::flush_guard();
    let args = ExpArgs::parse();
    let samples = args.get_usize("samples", 6250);
    let iters = args.get_usize("iters", 120);
    let seeds = args.get_usize("seeds", 2);

    let catalog: KnobCatalog = KnobCatalog::mysql57();
    let pool = full_pool(Workload::Sysbench, samples, 7);
    let top20 = top_k_knobs(MeasureKind::Shap, &catalog, &pool, 20, 11);
    let sys_space = TuningSpace::with_default_base(&catalog, top20.clone(), Hardware::B);

    // ---- Pre-steps shared by the ablation groups -------------------------
    // 2. categorical encoding: a heterogeneous JOB space.
    let job_pool = full_pool(Workload::Job, samples, 7);
    let job_scores = dbtune_bench::importance_scores(MeasureKind::Shap, &catalog, &job_pool, 11);
    let mut cats: Vec<usize> = catalog.categorical_indices();
    cats.sort_by(|&a, &b| dbtune_core::ord::cmp_score_desc(&job_scores[a], &job_scores[b]));
    cats.truncate(5);
    let mut ints: Vec<usize> = catalog.integer_indices();
    ints.sort_by(|&a, &b| dbtune_core::ord::cmp_score_desc(&job_scores[a], &job_scores[b]));
    ints.truncate(15);
    let mut hetero = cats;
    hetero.extend(ints);
    let het_space = TuningSpace::with_default_base(&catalog, hetero, Hardware::B);

    // 4. failure handling: a space containing the crash-prone memory knobs.
    let mut crashy = top20.clone();
    for name in ["innodb_buffer_pool_size", "tmp_table_size", "innodb_thread_concurrency"] {
        let i = catalog.expect_index(name);
        if !crashy.contains(&i) {
            crashy.push(i);
        }
    }
    let crashy_space = TuningSpace::with_default_base(&catalog, crashy, Hardware::B);

    // 5. negative transfer: JOB (analytical, latency scores) projected
    // onto the OLTP space — deliberately unrelated history. Sequential:
    // the grid depends on this source run.
    let mut src_sim = DbSimulator::new(Workload::Job, Hardware::B, 77);
    let mut src_opt = Smac::new(sys_space.space().clone(), SmacParams::default(), 77);
    let src_run = run_session(
        &mut src_sim,
        &sys_space,
        &mut src_opt,
        &SessionConfig { iterations: 60, lhs_init: 10, seed: 77, ..Default::default() },
    );
    let dissimilar = SourceTask {
        name: "JOB".into(),
        x: src_run.observations.iter().map(|o| o.config.clone()).collect(),
        y: src_run.observations.iter().map(|o| o.score).collect(),
        metrics: src_run.observations.iter().map(|o| o.metrics.clone()).collect(),
    };

    // ---- The ablation grid: (variant × seed) ------------------------------
    enum Kind {
        SmacInterleave { every: usize },
        CatEncoding { bo: BoKind },
        TurboRestarts { length_min: f64 },
        Failure { policy: FailurePolicy },
        Rgpe,
        Mapped,
    }
    let variants: Vec<(&str, &str, Kind)> = vec![
        ("smac_interleave", "interleave on (default)", Kind::SmacInterleave { every: 8 }),
        ("smac_interleave", "interleave off", Kind::SmacInterleave { every: 0 }),
        (
            "categorical_encoding",
            "Hamming kernel (mixed BO)",
            Kind::CatEncoding { bo: BoKind::Mixed },
        ),
        (
            "categorical_encoding",
            "ordinal RBF (vanilla BO)",
            Kind::CatEncoding { bo: BoKind::Vanilla },
        ),
        (
            "turbo_restarts",
            "restarts on (default)",
            Kind::TurboRestarts { length_min: 0.8 * 0.5f64.powi(6) },
        ),
        ("turbo_restarts", "restarts off", Kind::TurboRestarts { length_min: 0.0 }),
        (
            "failure_handling",
            "worst-seen substitution (§4.1)",
            Kind::Failure { policy: FailurePolicy::WorstSeen },
        ),
        ("failure_handling", "discard failures", Kind::Failure { policy: FailurePolicy::Discard }),
        ("negative_transfer", "RGPE (adaptive weights)", Kind::Rgpe),
        ("negative_transfer", "workload mapping (forced pooling)", Kind::Mapped),
    ];
    let mut grid: Vec<(usize, u64)> = Vec::new();
    for vi in 0..variants.len() {
        for s in 0..seeds {
            grid.push((vi, 4000 + s as u64));
        }
    }

    let opts = GridOpts::from_args("ablations", &args, 4000);
    let cache = opts.make_cache();
    let improvements = run_grid(&grid, opts.workers, |_, &(vi, seed)| {
        let run = |wl: Workload, space: &TuningSpace, opt: &mut dyn Optimizer, policy| {
            session(wl, space, opt, iters, seed, policy, cache.clone(), opts.noise_seed)
                .best_improvement()
        };
        match &variants[vi].2 {
            Kind::SmacInterleave { every } => {
                let mut opt = Smac::new(
                    sys_space.space().clone(),
                    SmacParams { random_interleave_every: *every, ..Default::default() },
                    seed,
                );
                run(Workload::Sysbench, &sys_space, &mut opt, FailurePolicy::WorstSeen)
            }
            Kind::CatEncoding { bo } => {
                let mut opt = BoOptimizer::new(het_space.space().clone(), *bo);
                run(Workload::Job, &het_space, &mut opt, FailurePolicy::WorstSeen)
            }
            Kind::TurboRestarts { length_min } => {
                let mut opt = Turbo::new(
                    sys_space.space().clone(),
                    TurboParams { length_min: *length_min, ..Default::default() },
                );
                run(Workload::Sysbench, &sys_space, &mut opt, FailurePolicy::WorstSeen)
            }
            Kind::Failure { policy } => {
                let mut opt = Smac::new(crashy_space.space().clone(), SmacParams::default(), seed);
                run(Workload::Sysbench, &crashy_space, &mut opt, *policy)
            }
            Kind::Rgpe => {
                let mut opt = RgpeOptimizer::new(
                    sys_space.space().clone(),
                    SurrogateKind::RandomForest,
                    std::slice::from_ref(&dissimilar),
                    seed,
                );
                run(Workload::Sysbench, &sys_space, &mut opt, FailurePolicy::WorstSeen)
            }
            Kind::Mapped => {
                let mut opt = MappedOptimizer::new(
                    sys_space.space().clone(),
                    BaseKind::Smac,
                    vec![dissimilar.clone()],
                    seed,
                );
                run(Workload::Sysbench, &sys_space, &mut opt, FailurePolicy::WorstSeen)
            }
        }
    });
    let exec = opts.report(cache.as_ref());

    let mut findings: Vec<Finding> = Vec::new();
    for ((ablation, variant, _), chunk) in variants.iter().zip(improvements.chunks(seeds)) {
        let v = dbtune_bench::median(chunk);
        println!("[{ablation}] {variant}: {}", pct(v));
        findings.push(Finding {
            ablation: ablation.to_string(),
            variant: variant.to_string(),
            median_improvement: v,
        });
    }

    println!("\n== Ablation summary (median best improvement) ==");
    let rows: Vec<Vec<String>> = findings
        .iter()
        .map(|f| vec![f.ablation.clone(), f.variant.clone(), pct(f.median_improvement)])
        .collect();
    print_table(&["Ablation", "Variant", "Improvement"], &rows);

    print_exec_summary(&exec);
    save_json_with_exec("ablations", &findings, &exec);
}
