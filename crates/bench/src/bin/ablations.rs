//! Ablation studies for the design choices DESIGN.md §6 calls out —
//! beyond the paper's own tables, these justify the defaults this
//! implementation ships with:
//!
//! 1. SMAC's interleaved random configurations (on vs off);
//! 2. categorical encoding: Hamming kernel vs ordinal RBF on a
//!    heterogeneous space (the §6.2.2 mechanism, isolated);
//! 3. TuRBO trust-region restarts (on vs off);
//! 4. failure handling: worst-seen substitution vs discarding crashes;
//! 5. RGPE ensemble vs naive observation pooling on a *dissimilar*
//!    source (negative-transfer resistance).
//!
//! Arguments: `samples=6250 iters=120 seeds=2`.

use dbtune_bench::{full_pool, pct, print_table, save_json, top_k_knobs, ExpArgs};
use dbtune_core::importance::MeasureKind;
use dbtune_core::optimizer::{
    BoKind, BoOptimizer, Optimizer, Smac, SmacParams, Turbo, TurboParams,
};
use dbtune_core::space::TuningSpace;
use dbtune_core::transfer::{BaseKind, MappedOptimizer, RgpeOptimizer, SourceTask, SurrogateKind};
use dbtune_core::tuner::{run_session, FailurePolicy, SessionConfig, SessionResult};
use dbtune_dbsim::{DbSimulator, Hardware, KnobCatalog, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Finding {
    ablation: String,
    variant: String,
    median_improvement: f64,
}

fn session(
    wl: Workload,
    space: &TuningSpace,
    opt: &mut dyn Optimizer,
    iters: usize,
    seed: u64,
    policy: FailurePolicy,
) -> SessionResult {
    let mut sim = DbSimulator::new(wl, Hardware::B, seed);
    run_session(
        &mut sim,
        space,
        opt,
        &SessionConfig { iterations: iters, lhs_init: 10, seed, failure_policy: policy },
    )
}

fn median_runs(
    seeds: usize,
    mut run: impl FnMut(u64) -> f64,
) -> f64 {
    let vals: Vec<f64> = (0..seeds).map(|s| run(4000 + s as u64)).collect();
    dbtune_bench::median(&vals)
}

fn main() {
    let args = ExpArgs::parse();
    let samples = args.get_usize("samples", 6250);
    let iters = args.get_usize("iters", 120);
    let seeds = args.get_usize("seeds", 2);

    let catalog: KnobCatalog = KnobCatalog::mysql57();
    let pool = full_pool(Workload::Sysbench, samples, 7);
    let top20 = top_k_knobs(MeasureKind::Shap, &catalog, &pool, 20, 11);
    let sys_space = TuningSpace::with_default_base(&catalog, top20.clone(), Hardware::B);

    let mut findings: Vec<Finding> = Vec::new();
    let push = |findings: &mut Vec<Finding>, ablation: &str, variant: &str, v: f64| {
        println!("[{ablation}] {variant}: {}", pct(v));
        findings.push(Finding {
            ablation: ablation.to_string(),
            variant: variant.to_string(),
            median_improvement: v,
        });
    };

    // ---- 1. SMAC random interleaving -------------------------------------
    for (variant, every) in [("interleave on (default)", 8usize), ("interleave off", 0)] {
        let v = median_runs(seeds, |seed| {
            let mut opt = Smac::new(
                sys_space.space().clone(),
                SmacParams { random_interleave_every: every, ..Default::default() },
                seed,
            );
            session(Workload::Sysbench, &sys_space, &mut opt, iters, seed, FailurePolicy::WorstSeen)
                .best_improvement()
        });
        push(&mut findings, "smac_interleave", variant, v);
    }

    // ---- 2. categorical encoding on a heterogeneous JOB space -------------
    let job_pool = full_pool(Workload::Job, samples, 7);
    let job_scores = dbtune_bench::importance_scores(MeasureKind::Shap, &catalog, &job_pool, 11);
    let mut cats: Vec<usize> = catalog.categorical_indices();
    cats.sort_by(|&a, &b| job_scores[b].partial_cmp(&job_scores[a]).expect("NaN"));
    cats.truncate(5);
    let mut ints: Vec<usize> = catalog.integer_indices();
    ints.sort_by(|&a, &b| job_scores[b].partial_cmp(&job_scores[a]).expect("NaN"));
    ints.truncate(15);
    let mut hetero = cats;
    hetero.extend(ints);
    let het_space = TuningSpace::with_default_base(&catalog, hetero, Hardware::B);
    for (variant, kind) in [("Hamming kernel (mixed BO)", BoKind::Mixed), ("ordinal RBF (vanilla BO)", BoKind::Vanilla)] {
        let v = median_runs(seeds, |seed| {
            let mut opt = BoOptimizer::new(het_space.space().clone(), kind);
            session(Workload::Job, &het_space, &mut opt, iters, seed, FailurePolicy::WorstSeen)
                .best_improvement()
        });
        push(&mut findings, "categorical_encoding", variant, v);
    }

    // ---- 3. TuRBO restarts --------------------------------------------------
    for (variant, length_min) in [("restarts on (default)", 0.8 * 0.5f64.powi(6)), ("restarts off", 0.0)] {
        let v = median_runs(seeds, |seed| {
            let mut opt = Turbo::new(
                sys_space.space().clone(),
                TurboParams { length_min, ..Default::default() },
            );
            session(Workload::Sysbench, &sys_space, &mut opt, iters, seed, FailurePolicy::WorstSeen)
                .best_improvement()
        });
        push(&mut findings, "turbo_restarts", variant, v);
    }

    // ---- 4. failure handling -------------------------------------------------
    // Use a space containing the crash-prone memory knobs.
    let mut crashy = top20.clone();
    for name in ["innodb_buffer_pool_size", "tmp_table_size", "innodb_thread_concurrency"] {
        let i = catalog.expect_index(name);
        if !crashy.contains(&i) {
            crashy.push(i);
        }
    }
    let crashy_space = TuningSpace::with_default_base(&catalog, crashy, Hardware::B);
    for (variant, policy) in [
        ("worst-seen substitution (§4.1)", FailurePolicy::WorstSeen),
        ("discard failures", FailurePolicy::Discard),
    ] {
        let v = median_runs(seeds, |seed| {
            let mut opt = Smac::new(crashy_space.space().clone(), SmacParams::default(), seed);
            session(Workload::Sysbench, &crashy_space, &mut opt, iters, seed, policy)
                .best_improvement()
        });
        push(&mut findings, "failure_handling", variant, v);
    }

    // ---- 5. RGPE vs naive pooling on a dissimilar source ----------------------
    // Source: JOB (analytical, latency scores) projected onto the OLTP
    // space — deliberately unrelated history.
    let mut src_sim = DbSimulator::new(Workload::Job, Hardware::B, 77);
    let mut src_opt = Smac::new(sys_space.space().clone(), SmacParams::default(), 77);
    let src_run = run_session(
        &mut src_sim,
        &sys_space,
        &mut src_opt,
        &SessionConfig { iterations: 60, lhs_init: 10, seed: 77, ..Default::default() },
    );
    let dissimilar = SourceTask {
        name: "JOB".into(),
        x: src_run.observations.iter().map(|o| o.config.clone()).collect(),
        y: src_run.observations.iter().map(|o| o.score).collect(),
        metrics: src_run.observations.iter().map(|o| o.metrics.clone()).collect(),
    };
    let rgpe = median_runs(seeds, |seed| {
        let mut opt = RgpeOptimizer::new(
            sys_space.space().clone(),
            SurrogateKind::RandomForest,
            std::slice::from_ref(&dissimilar),
            seed,
        );
        session(Workload::Sysbench, &sys_space, &mut opt, iters, seed, FailurePolicy::WorstSeen)
            .best_improvement()
    });
    push(&mut findings, "negative_transfer", "RGPE (adaptive weights)", rgpe);
    let mapped = median_runs(seeds, |seed| {
        let mut opt = MappedOptimizer::new(
            sys_space.space().clone(),
            BaseKind::Smac,
            vec![dissimilar.clone()],
            seed,
        );
        session(Workload::Sysbench, &sys_space, &mut opt, iters, seed, FailurePolicy::WorstSeen)
            .best_improvement()
    });
    push(&mut findings, "negative_transfer", "workload mapping (forced pooling)", mapped);

    println!("\n== Ablation summary (median best improvement) ==");
    let rows: Vec<Vec<String>> = findings
        .iter()
        .map(|f| vec![f.ablation.clone(), f.variant.clone(), pct(f.median_improvement)])
        .collect();
    print_table(&["Ablation", "Variant", "Improvement"], &rows);

    save_json("ablations", &findings);
}
