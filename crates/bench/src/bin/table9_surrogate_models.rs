// Driver binary: exempt from the unwrap ban (lint rule E1 and its clippy
// twin unwrap_used) — a panic here aborts one experiment run, not a
// library caller.
#![allow(clippy::unwrap_used)]
//! Table 9: regression performance of the surrogate-model zoo (RF, GB,
//! SVR, NuSVR, KNN, RR) by 10-fold cross-validation, on the JOB small
//! space and the SYSBENCH medium space.
//!
//! Arguments: `samples=1200 folds=10 workers= cache=on` (paper:
//! 6250/10). The two scenarios are self-contained (own collection +
//! zoo evaluation) and run as one executor cell each; their spaces
//! differ, so the shared cache records misses only.

use dbtune_bench::{
    full_pool, print_exec_summary, print_table, save_json_with_exec, top_k_knobs, ExpArgs, GridOpts,
};
use dbtune_benchmark::collect::collect_samples;
use dbtune_benchmark::surrogate::evaluate_zoo;
use dbtune_core::exec::run_grid;
use dbtune_core::importance::MeasureKind;
use dbtune_core::space::TuningSpace;
use dbtune_dbsim::{DbSimulator, Hardware, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Entry {
    workload: String,
    model: String,
    rmse: f64,
    r2: f64,
}

fn main() {
    let _trace_flush = dbtune_bench::flush_guard();
    let args = ExpArgs::parse();
    let samples = args.get_usize("samples", 1200);
    let folds = args.get_usize("folds", 10);

    let catalog = DbSimulator::new(Workload::Job, Hardware::B, 0).catalog().clone();
    // JOB: small space (top-5); SYSBENCH: medium space (top-20), as §8.
    let scenarios: [(Workload, usize); 2] = [(Workload::Job, 5), (Workload::Sysbench, 20)];

    let opts = GridOpts::from_args("table9_surrogate_models", &args, 50);

    // Pools are disk-cached per workload; collect them sequentially so
    // concurrent cells never race on the cache files.
    let pools: Vec<_> = scenarios.iter().map(|&(wl, _)| full_pool(wl, samples, 7)).collect();

    let per_scenario = run_grid(&scenarios, opts.workers, |i, &(wl, k)| {
        let selected = top_k_knobs(MeasureKind::Shap, &catalog, &pools[i], k, 11);
        let space = TuningSpace::with_default_base(&catalog, selected, Hardware::B);
        // Per-space collection, as in the paper: the unselected knobs stay
        // at their defaults while LHS + optimizer-driven sampling covers
        // the space (the full pool is only used for the SHAP ranking).
        let mut sim = DbSimulator::new(wl, Hardware::B, 50 + k as u64);
        let ds = collect_samples(&mut sim, &space, samples, 9);
        evaluate_zoo(space.space(), &ds, folds, 3)
    });
    let exec = opts.report(None);

    let mut entries: Vec<Entry> = Vec::new();
    for (&(wl, _), results) in scenarios.iter().zip(&per_scenario) {
        for r in results {
            eprintln!(
                "[{} {}] RMSE {:.2} R2 {:.1}%",
                wl.name(),
                r.kind.label(),
                r.rmse,
                r.r_squared * 100.0
            );
            entries.push(Entry {
                workload: wl.name().to_string(),
                model: r.kind.label().to_string(),
                rmse: r.rmse,
                r2: r.r_squared,
            });
        }
    }

    println!("\n== Table 9: surrogate regression performance ({folds}-fold CV) ==");
    for &(wl, _) in &scenarios {
        println!("\n-- {} --", wl.name());
        let rows: Vec<Vec<String>> = entries
            .iter()
            .filter(|e| e.workload == wl.name())
            .map(|e| {
                vec![e.model.clone(), format!("{:.2}", e.rmse), format!("{:.1}%", e.r2 * 100.0)]
            })
            .collect();
        print_table(&["Model", "RMSE", "R²"], &rows);
    }

    print_exec_summary(&exec);
    save_json_with_exec("table9_surrogates", &entries, &exec);
}
