// Driver binary: exempt from the unwrap ban (lint rule E1 and its clippy
// twin unwrap_used) — a panic here aborts one experiment run, not a
// library caller.
#![allow(clippy::unwrap_used)]
//! Optimizer-quality baseline: runs the fixed quality matrix (every
//! Table 3 optimizer on JOB and Sysbench, see `dbtune_bench::quality`)
//! with the diag recorder on, folds the journal's per-iteration records
//! into deterministic regret-curve summaries, writes
//! `BENCH_quality.json`, and (optionally) diffs it against a committed
//! baseline.
//!
//! Usage: `quality_baseline [repeats=2] [iters=30] [workers=1]
//! [write=BENCH_quality.json] [against=<baseline.json>] [mode=warn|gate]`
//!
//! Unlike `BENCH_perf.json` there is no timing section: everything in
//! the artifact is deterministic (the `results` block is a pure
//! function of seeds), so the diff holds the whole block to exact
//! equality, and the binary itself verifies every repeat reproduced the
//! same block before writing anything.
//!
//! Exit codes: 0 ok (including `mode=warn` with drift, and a missing
//! `against=` file), 1 determinism failure or drift under `mode=gate`,
//! 2 usage or I/O error.

use dbtune_bench::artifact::{load_json_file, parse_quality_baseline};
use dbtune_bench::{quality, run_tuning_grid, ExpArgs, GridOpts};
use dbtune_core::telemetry;
use serde::{Number, Value};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let _trace_flush = dbtune_bench::flush_guard();
    let args = ExpArgs::parse();
    let repeats = args.get_usize("repeats", 2).max(1);
    let iters = args.get_usize("iters", quality::DEFAULT_ITERS);
    let workers = args.get_usize("workers", 1);
    let write = args.get_str("write", "BENCH_quality.json");
    let against = args.get_str("against", "");
    let gate = match args.get_str("mode", "warn").as_str() {
        "warn" => false,
        "gate" => true,
        other => {
            eprintln!("quality_baseline: bad mode '{other}' (expected warn|gate)");
            return ExitCode::from(2);
        }
    };

    let cells = quality::quality_cells(iters);
    let tele = telemetry::global();
    tele.enable_diag();
    let scratch = std::env::temp_dir();
    let mut results_blocks: Vec<(Value, String)> = Vec::new();

    for repeat in 0..repeats {
        let journal_path =
            scratch.join(format!("dbtune_quality_{}_{repeat}.jsonl", std::process::id()));
        if let Err(e) = tele.enable_journal(&journal_path, "quality_baseline") {
            eprintln!("quality_baseline: cannot open {}: {e}", journal_path.display());
            return ExitCode::from(2);
        }
        let (_, exec) = run_tuning_grid(
            &cells,
            &GridOpts {
                workers,
                cache: true,
                noise_seed: quality::SEED,
                faults: dbtune_dbsim::FaultPlan::disabled(),
                retry: dbtune_core::RetryPolicy::none(),
            },
        );
        tele.journal.flush();
        tele.journal.disable();
        let results = match std::fs::read_to_string(&journal_path)
            .map_err(|e| e.to_string())
            .and_then(|text| dbtune_trace::load_journal_str(&text))
            .and_then(|journal| quality::results_value(&journal))
        {
            Ok(v) => v,
            Err(e) => {
                eprintln!("quality_baseline: repeat {repeat} journal: {e}");
                return ExitCode::from(2);
            }
        };
        let _ = std::fs::remove_file(&journal_path);
        let fingerprint = match serde_json::to_string(&results) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("quality_baseline: cannot serialize results: {e:?}");
                return ExitCode::from(2);
            }
        };
        println!(
            "[repeat {}/{repeats}] sessions={} cache hits={} misses={}",
            repeat + 1,
            quality::MATRIX.len(),
            exec.cache.hits,
            exec.cache.misses
        );
        results_blocks.push((results, fingerprint));
    }

    // The determinism contract, enforced: every repeat must fold to the
    // same results block (fresh cache and journal per repeat, fixed
    // seeds, diag capture consuming no randomness).
    for (repeat, (_, fingerprint)) in results_blocks.iter().enumerate().skip(1) {
        if fingerprint != &results_blocks[0].1 {
            eprintln!(
                "quality_baseline: results block of repeat {repeat} differs from repeat 0 — \
                 determinism bug; not writing a baseline"
            );
            return ExitCode::from(1);
        }
    }

    let artifact = Value::Object(vec![
        ("schema".to_string(), Value::Number(Number::PosInt(1))),
        (
            "build".to_string(),
            Value::Object(vec![
                ("version".to_string(), Value::String(env!("CARGO_PKG_VERSION").to_string())),
                (
                    "profile".to_string(),
                    Value::String(
                        if cfg!(debug_assertions) { "debug" } else { "release" }.to_string(),
                    ),
                ),
                ("repeats".to_string(), Value::Number(Number::PosInt(repeats as u64))),
                ("iters".to_string(), Value::Number(Number::PosInt(iters as u64))),
                ("knobs".to_string(), Value::Number(Number::PosInt(quality::KNOBS as u64))),
                ("seed".to_string(), Value::Number(Number::PosInt(quality::SEED))),
                (
                    "matrix".to_string(),
                    Value::Array(
                        quality::MATRIX
                            .iter()
                            .map(|&(w, o)| Value::String(quality::session_label(w, o)))
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("results".to_string(), results_blocks.swap_remove(0).0),
    ]);

    let write_path = PathBuf::from(&write);
    let text = match serde_json::to_string_pretty(&artifact) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("quality_baseline: cannot serialize artifact: {e:?}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = std::fs::write(&write_path, text + "\n") {
        eprintln!("quality_baseline: cannot write {}: {e}", write_path.display());
        return ExitCode::from(2);
    }
    println!("[wrote {}]", write_path.display());

    if against.is_empty() {
        return ExitCode::SUCCESS;
    }
    let against_path = Path::new(&against);
    if !against_path.exists() {
        println!("[no baseline at {against} — nothing to compare]");
        return ExitCode::SUCCESS;
    }
    let (base, cur) = match (
        load_json_file(against_path).and_then(|v| parse_quality_baseline(&v)),
        parse_quality_baseline(&artifact),
    ) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("quality_baseline: {e}");
            return ExitCode::from(2);
        }
    };
    if base.results_fingerprint == cur.results_fingerprint {
        println!("\n[diff vs {against}] OK — quality results identical");
        return ExitCode::SUCCESS;
    }
    println!("\n[diff vs {against}] quality results DRIFTED; per-session deltas:");
    let fmt = |v: Option<f64>| v.map_or("n/a".to_string(), |v| format!("{v:.6}"));
    let keys: std::collections::BTreeSet<&String> =
        base.sessions.keys().chain(cur.sessions.keys()).collect();
    for key in keys {
        match (base.sessions.get(key), cur.sessions.get(key)) {
            (Some(b), Some(c)) if b == c => {}
            (Some(&(bb, br, _)), Some(&(cb, cr, _))) => println!(
                "  {key}: final best {bb:.6} -> {cb:.6}, regret {} -> {}",
                fmt(br),
                fmt(cr)
            ),
            (Some(_), None) => println!("  {key}: missing from current run"),
            (None, Some(_)) => println!("  {key}: missing from baseline"),
            (None, None) => {}
        }
    }
    println!(
        "(a quality drift means an optimizer's trajectory changed — intended improvements \
         should regenerate BENCH_quality.json in the same commit)"
    );
    if gate {
        ExitCode::from(1)
    } else {
        println!("(mode=warn: exiting 0; use mode=gate to fail)");
        ExitCode::SUCCESS
    }
}
