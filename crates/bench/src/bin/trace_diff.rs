// Driver binary: exempt from the unwrap ban (lint rule E1 and its clippy
// twin unwrap_used) — a panic here aborts one experiment run, not a
// library caller.
#![allow(clippy::unwrap_used)]
//! Compares two trace journals of the same driver configuration,
//! aligning them by span name and metric key.
//!
//! Usage: `trace_diff <base.jsonl> <current.jsonl> [mode=warn|gate]
//! [rel=0.30] [floor_ms=5]`
//!
//! Deterministic quantities — counters, gauges, span counts, cell
//! counts — must match **exactly**: the tuning loop's control flow never
//! depends on wall clock, so any delta means the two runs did different
//! work. Wall times are compared on each span's fastest observation
//! (min-of-N) and flagged only beyond the relative threshold `rel` AND
//! the absolute floor `floor_ms`.
//!
//! Exit codes: 0 clean (or `mode=warn`), 1 flagged deltas under
//! `mode=gate`, 2 usage or unreadable/invalid journal.

use dbtune_bench::artifact::load_journal;
use dbtune_trace::{diff_summaries, summarize, DiffConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut paths = Vec::new();
    let mut gate = false;
    let mut cfg = DiffConfig::default();
    for arg in std::env::args().skip(1) {
        if let Some((key, value)) = arg.split_once('=') {
            match key {
                "mode" => match value {
                    "warn" => gate = false,
                    "gate" => gate = true,
                    other => {
                        eprintln!("trace_diff: bad mode '{other}' (expected warn|gate)");
                        return ExitCode::from(2);
                    }
                },
                "rel" => match value.parse::<f64>() {
                    Ok(v) if v >= 0.0 => cfg.rel_threshold = v,
                    _ => {
                        eprintln!("trace_diff: bad rel '{value}'");
                        return ExitCode::from(2);
                    }
                },
                "floor_ms" => match value.parse::<u64>() {
                    Ok(v) => cfg.abs_floor_nanos = v * 1_000_000,
                    _ => {
                        eprintln!("trace_diff: bad floor_ms '{value}'");
                        return ExitCode::from(2);
                    }
                },
                _ => {
                    eprintln!("trace_diff: unknown flag '{key}'");
                    return ExitCode::from(2);
                }
            }
        } else {
            paths.push(PathBuf::from(arg));
        }
    }
    let [base_path, cur_path] = paths.as_slice() else {
        eprintln!(
            "usage: trace_diff <base.jsonl> <current.jsonl> [mode=warn|gate] [rel=0.30] [floor_ms=5]"
        );
        return ExitCode::from(2);
    };

    let (base, cur) = match (load_journal(base_path), load_journal(cur_path)) {
        (Ok(b), Ok(c)) => (summarize(&b), summarize(&c)),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("trace_diff: {e}");
            return ExitCode::from(2);
        }
    };

    let entries = diff_summaries(&base, &cur, &cfg);
    let flagged: Vec<_> = entries.iter().filter(|e| e.flagged).collect();
    println!(
        "base    : {} ({} spans, {} counters)",
        base_path.display(),
        base.spans.len(),
        base.counters.len()
    );
    println!(
        "current : {} ({} spans, {} counters)",
        cur_path.display(),
        cur.spans.len(),
        cur.counters.len()
    );
    println!(
        "compared: {} keys (rel>{:.0}%, floor {}ms on wall times; counts exact)",
        entries.len(),
        cfg.rel_threshold * 100.0,
        cfg.abs_floor_nanos / 1_000_000
    );
    println!();
    if flagged.is_empty() {
        println!("OK — no deltas beyond threshold, zero counter deltas");
        return ExitCode::SUCCESS;
    }
    println!("{} flagged delta(s):", flagged.len());
    for entry in &flagged {
        let fmt = |v: Option<f64>| v.map_or("—".to_string(), |v| format!("{v:.0}"));
        println!(
            "  {:<40} {:>14} -> {:<14} {}",
            entry.key,
            fmt(entry.base),
            fmt(entry.cur),
            entry.note
        );
    }
    if gate {
        ExitCode::from(1)
    } else {
        println!("\n(mode=warn: exiting 0; use mode=gate to fail)");
        ExitCode::SUCCESS
    }
}
