//! Tables 4 & 5: workload profiles and hardware configurations, printed
//! from the simulator's own metadata, plus the default performance of
//! every workload (sanity anchor for all other experiments).

use dbtune_bench::print_table;
use dbtune_dbsim::{DbSimulator, Hardware, Objective, Workload};

fn main() {
    println!("== Table 4: Profile information for workloads ==");
    let rows: Vec<Vec<String>> = Workload::ALL
        .iter()
        .map(|w| {
            let p = w.profile();
            vec![
                w.name().to_string(),
                format!("{:?}", p.class),
                if p.size_gb >= 0.01 {
                    format!("{:.1}G", p.size_gb)
                } else {
                    format!("{:.2}M", p.size_gb * 1024.0)
                },
                p.tables.to_string(),
                format!("{:.1}%", p.read_only_frac * 100.0),
            ]
        })
        .collect();
    print_table(&["Workload", "Class", "Size", "Tables", "Read-Only Txns"], &rows);

    println!("\n== Table 5: Hardware configurations for database instances ==");
    let rows: Vec<Vec<String>> = Hardware::ALL
        .iter()
        .map(|h| {
            vec![
                h.label().to_string(),
                format!("{} cores", h.cores()),
                format!("{}GB", h.ram_mb() / 1024.0),
            ]
        })
        .collect();
    print_table(&["Instance", "CPU", "RAM"], &rows);

    println!("\n== Default performance on instance B (simulator anchor) ==");
    let rows: Vec<Vec<String>> = Workload::ALL
        .iter()
        .map(|&w| {
            let sim = DbSimulator::new(w, Hardware::B, 0);
            let v = sim.expected_value(sim.default_config()).expect("default must not crash");
            let unit = match sim.objective() {
                Objective::Throughput => format!("{v:.0} tx/s"),
                Objective::Latency95 => format!("{v:.1} s (95th pct latency)"),
            };
            vec![w.name().to_string(), unit]
        })
        .collect();
    print_table(&["Workload", "Default performance"], &rows);
}
