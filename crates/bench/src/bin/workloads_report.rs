// Driver binary: exempt from the unwrap ban (lint rule E1 and its clippy
// twin unwrap_used) — a panic here aborts one experiment run, not a
// library caller.
#![allow(clippy::unwrap_used)]
//! Tables 4 & 5: workload profiles and hardware configurations, printed
//! from the simulator's own metadata, plus the default performance of
//! every workload (sanity anchor for all other experiments).
//!
//! Arguments: `workers= cache=on`. The per-workload default evaluations
//! run on the executor through the shared cache (one entry per
//! workload — distinct domains never collide).

use dbtune_bench::{print_exec_summary, print_table, save_json_with_exec, ExpArgs, GridOpts};
use dbtune_core::exec::{run_grid, CachedObjective};
use dbtune_core::tuner::SimObjective;
use dbtune_dbsim::{DbSimulator, Hardware, Objective, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Anchor {
    workload: String,
    objective: String,
    /// Noise-free default performance on instance B.
    expected_default: f64,
    /// One noise-bearing measurement of the same configuration (through
    /// the deterministic noise token, so reproducible).
    measured_default: f64,
}

fn main() {
    let _trace_flush = dbtune_bench::flush_guard();
    let args = ExpArgs::parse();
    let opts = GridOpts::from_args("workloads_report", &args, 42);

    println!("== Table 4: Profile information for workloads ==");
    let rows: Vec<Vec<String>> = Workload::ALL
        .iter()
        .map(|w| {
            let p = w.profile();
            vec![
                w.name().to_string(),
                format!("{:?}", p.class),
                if p.size_gb >= 0.01 {
                    format!("{:.1}G", p.size_gb)
                } else {
                    format!("{:.2}M", p.size_gb * 1024.0)
                },
                p.tables.to_string(),
                format!("{:.1}%", p.read_only_frac * 100.0),
            ]
        })
        .collect();
    print_table(&["Workload", "Class", "Size", "Tables", "Read-Only Txns"], &rows);

    println!("\n== Table 5: Hardware configurations for database instances ==");
    let rows: Vec<Vec<String>> = Hardware::ALL
        .iter()
        .map(|h| {
            vec![
                h.label().to_string(),
                format!("{} cores", h.cores()),
                format!("{}GB", h.ram_mb() / 1024.0),
            ]
        })
        .collect();
    print_table(&["Instance", "CPU", "RAM"], &rows);

    let cache = opts.make_cache();
    let anchors = run_grid(&Workload::ALL, opts.workers, |_, &w| {
        let sim = DbSimulator::new(w, Hardware::B, 0);
        let expected = sim.expected_value(sim.default_config()).expect("default must not crash");
        let objective = sim.objective();
        let default_cfg = sim.default_config().to_vec();
        let mut obj = CachedObjective::new(sim, cache.clone(), opts.noise_seed);
        let measured = obj.evaluate(&default_cfg).value;
        Anchor {
            workload: w.name().to_string(),
            objective: match objective {
                Objective::Throughput => "throughput".to_string(),
                Objective::Latency95 => "latency95".to_string(),
            },
            expected_default: expected,
            measured_default: measured,
        }
    });
    let exec = opts.report(cache.as_ref());

    println!("\n== Default performance on instance B (simulator anchor) ==");
    let rows: Vec<Vec<String>> = anchors
        .iter()
        .map(|a| {
            let unit = match a.objective.as_str() {
                "throughput" => format!("{:.0} tx/s", a.expected_default),
                _ => format!("{:.1} s (95th pct latency)", a.expected_default),
            };
            vec![a.workload.clone(), unit]
        })
        .collect();
    print_table(&["Workload", "Default performance"], &rows);

    print_exec_summary(&exec);
    save_json_with_exec("workloads_report", &anchors, &exec);
}
