// Driver binary: exempt from the unwrap ban (lint rule E1 and its clippy
// twin unwrap_used) — a panic here aborts one experiment run, not a
// library caller.
#![allow(clippy::unwrap_used)]
//! Resilience figure (workspace extension, no paper counterpart).
//!
//! All seven optimizers tune SYSBENCH twice over the same knobs and
//! seeds: once fault-free, once under a seeded [`FaultPlan`] injecting
//! transient timeouts, spurious crashes, corrupted metric vectors, and
//! stalls, with the executor's retry/backoff policy absorbing what it
//! can. Reports per-optimizer best improvement in both modes and the
//! *regret degradation* (baseline − chaos) — the price of running on a
//! flaky deployment. Both runs are fully deterministic: the baseline is
//! byte-identical to the other drivers' fault-free results, and the
//! chaos run replays bit-for-bit from `(fault seed, cell index)` on any
//! worker count (see `docs/robustness.md`).
//!
//! Arguments: `iters=60 seeds=2 workers= cache=on retries=attempts:3,backoff:30,mult:2`
//! plus `faults=` (defaults to the fixed plan below; `faults=off`
//! degenerates to two identical baseline runs).

use dbtune_bench::{
    pct, print_exec_summary, print_table, run_tuning_grid, save_json_with_exec, ExpArgs, GridOpts,
    TuningCell,
};
use dbtune_core::optimizer::OptimizerKind;
use dbtune_dbsim::{DbSimulator, FaultPlan, Hardware, Workload};
use serde::Serialize;

/// The default chaos schedule: ~16% of evaluation attempts suffer a
/// fault of some kind — a deliberately rough ride.
const DEFAULT_FAULTS: &str = "seed:11,timeout:0.05,crash:0.03,noise:0.05,stall:0.03";

#[derive(Serialize)]
struct Run {
    optimizer: String,
    baseline_improvement: f64,
    chaos_improvement: f64,
    degradation: f64,
    baseline_simulated_secs: f64,
    chaos_simulated_secs: f64,
}

fn main() {
    let _trace_flush = dbtune_bench::flush_guard();
    let args = ExpArgs::parse();
    let iters = args.get_usize("iters", 60);
    let seeds = args.get_usize("seeds", 2);

    let mut opts = GridOpts::from_args("fig11_resilience", &args, 1100);
    // This driver injects faults by default (it is the resilience
    // figure); an explicit `faults=` flag still wins.
    if args.get_str("faults", "").is_empty() {
        opts.faults = FaultPlan::parse(DEFAULT_FAULTS).unwrap();
    }

    // A fixed, impactful knob set (incl. the buffer pool, so the
    // simulator's own deterministic crash region stays in play alongside
    // the injected transients).
    let catalog = DbSimulator::new(Workload::Sysbench, Hardware::B, 0).catalog().clone();
    let selected: Vec<usize> = [
        "innodb_buffer_pool_size",
        "innodb_flush_log_at_trx_commit",
        "sync_binlog",
        "innodb_log_file_size",
        "innodb_io_capacity",
        "innodb_thread_concurrency",
        "table_open_cache",
        "max_heap_table_size",
    ]
    .iter()
    .map(|n| catalog.expect_index(n))
    .collect();

    let mut cells: Vec<TuningCell> = Vec::new();
    for &opt in &OptimizerKind::PAPER {
        for s in 0..seeds {
            cells.push(TuningCell {
                workload: Workload::Sysbench,
                selected: selected.clone(),
                opt_kind: opt,
                iters,
                seed: 1100 + s as u64,
            });
        }
    }

    // Fault-free baseline: exactly the plain execution path (the same
    // bytes every other driver produces for these cells).
    let baseline_opts = GridOpts { faults: FaultPlan::disabled(), ..opts };
    let (baseline, _) = run_tuning_grid(&cells, &baseline_opts);

    // Chaos run: same cells, same seeds, faults on.
    let (chaos, exec) = run_tuning_grid(&cells, &opts);

    let mut runs: Vec<Run> = Vec::new();
    for (i, &opt) in OptimizerKind::PAPER.iter().enumerate() {
        let chunk = |results: &[dbtune_core::SessionResult]| {
            let vals: Vec<f64> =
                results[i * seeds..(i + 1) * seeds].iter().map(|r| r.best_improvement()).collect();
            dbtune_bench::median(&vals)
        };
        let secs = |results: &[dbtune_core::SessionResult]| {
            results[i * seeds..(i + 1) * seeds].iter().map(|r| r.simulated_secs).sum::<f64>()
                / seeds as f64
        };
        let base = chunk(&baseline);
        let noisy = chunk(&chaos);
        let degradation = base - noisy;
        assert!(degradation.is_finite(), "{}: non-finite degradation", opt.label());
        runs.push(Run {
            optimizer: opt.label().to_string(),
            baseline_improvement: base,
            chaos_improvement: noisy,
            degradation,
            baseline_simulated_secs: secs(&baseline),
            chaos_simulated_secs: secs(&chaos),
        });
    }

    println!("\n== Resilience: best improvement, fault-free vs chaos ==");
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.optimizer.clone(),
                pct(r.baseline_improvement),
                pct(r.chaos_improvement),
                pct(r.degradation),
                format!(
                    "{:+.1}%",
                    100.0 * (r.chaos_simulated_secs / r.baseline_simulated_secs - 1.0)
                ),
            ]
        })
        .collect();
    print_table(
        &["Optimizer", "Baseline", "Under faults", "Degradation", "Extra sim. time"],
        &rows,
    );

    let degs: Vec<f64> = runs.iter().map(|r| r.degradation).collect();
    let median_deg = dbtune_bench::median(&degs);
    println!(
        "\nMedian degradation across optimizers: {} (bounded chaos: retries absorb transients, \
         quarantine-free baseline policy keeps §4.1 semantics)",
        pct(median_deg)
    );

    print_exec_summary(&exec);
    save_json_with_exec("fig11_resilience", &runs, &exec);
}
