// Driver binary: exempt from the unwrap ban (lint rule E1 and its clippy
// twin unwrap_used) — a panic here aborts one experiment run, not a
// library caller.
#![allow(clippy::unwrap_used)]
//! Continuous perf baseline: runs a fixed small workload matrix through
//! the parallel executor, writes `BENCH_perf.json`, and (optionally)
//! diffs it against a committed baseline.
//!
//! Usage: `perf_baseline [repeats=3] [iters=60] [workers=1]
//! [write=BENCH_perf.json] [against=<baseline.json>] [mode=warn|gate]`
//!
//! Timing is only comparable between runs of the same configuration —
//! in particular the same `workers` (concurrent sessions contend, which
//! inflates per-phase seconds); the configuration is recorded under
//! `"build"`.
//!
//! The artifact separates two kinds of content:
//!
//! * `"results"` — deterministic: per-cell best improvement and the
//!   counter totals (`exec.cache.*`, `sim.evals`, …). Byte-identical
//!   across runs, worker counts, and machines; the binary itself
//!   verifies every repeat produced the same block and fails if not.
//! * `"timing"` — per-repeat wall seconds, per-phase seconds, and
//!   per-span aggregates from a trace journal taken during each repeat.
//!   Noisy by nature; the diff compares minima over repeats against a
//!   relative threshold and absolute floor (see `dbtune_trace::diff`).
//!   The memory profiler is latched on for the whole run, so `"timing"`
//!   also carries a `"mem"` block: per-repeat `peak_bytes` (cumulative
//!   high-water — the latch is one-way, so later repeats can only raise
//!   it; the min-over-repeats diff statistic reads repeat 0) and
//!   `alloc_count` (per-repeat delta, deterministic like the counters
//!   but compared under the noise rule because allocator-level counts
//!   may shift with unrelated library changes).
//!
//! Exit codes: 0 ok (including `mode=warn` with regressions, and a
//! missing `against=` file), 1 determinism failure or regression under
//! `mode=gate`, 2 usage or I/O error. Flagged `mem:` keys are reported
//! but never gate — memory columns are warn-only, like `mode=warn`
//! wall time.

use dbtune_bench::artifact::{load_json_file, parse_perf_baseline};
use dbtune_bench::{run_tuning_grid, ExpArgs, GridOpts, TuningCell};
use dbtune_core::optimizer::OptimizerKind;
use dbtune_core::telemetry;
use dbtune_dbsim::Workload;
use dbtune_trace::{diff_baselines, summarize, DiffConfig};
use serde::{Number, Value};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The fixed matrix: small enough for CI, wide enough to touch every
/// hot path (GP fit, random forest, TPE density models, GA, three
/// different workload models). Changing it invalidates committed
/// baselines — bump with care and regenerate `BENCH_perf.json`.
const MATRIX: [(Workload, OptimizerKind); 4] = [
    (Workload::Job, OptimizerKind::VanillaBo),
    (Workload::Job, OptimizerKind::Smac),
    (Workload::Sysbench, OptimizerKind::Tpe),
    (Workload::Tpcc, OptimizerKind::Ga),
];

/// Knob count per cell: the first 12 catalog indices, fixed (no
/// importance ranking — the baseline must not depend on a pool file).
const KNOBS: usize = 12;

const SEED: u64 = 42;

fn main() -> ExitCode {
    let _trace_flush = dbtune_bench::flush_guard();
    let args = ExpArgs::parse();
    let repeats = args.get_usize("repeats", 3).max(1);
    let iters = args.get_usize("iters", 60);
    let workers = args.get_usize("workers", 1);
    let write = args.get_str("write", "BENCH_perf.json");
    let against = args.get_str("against", "");
    let gate = match args.get_str("mode", "warn").as_str() {
        "warn" => false,
        "gate" => true,
        other => {
            eprintln!("perf_baseline: bad mode '{other}' (expected warn|gate)");
            return ExitCode::from(2);
        }
    };

    let cells: Vec<TuningCell> = MATRIX
        .iter()
        .map(|&(workload, opt_kind)| TuningCell {
            workload,
            selected: (0..KNOBS).collect(),
            opt_kind,
            iters,
            seed: SEED,
        })
        .collect();

    let tele = telemetry::global();
    // Memory columns are part of the baseline contract: latch the
    // profiler for the whole run (accounting is read-only — the
    // determinism check below proves results are unaffected).
    tele.enable_memprof();
    let scratch = std::env::temp_dir();
    let mut results_blocks: Vec<Value> = Vec::new();
    let mut wall_secs: Vec<f64> = Vec::new();
    let mut mem_peak_bytes: Vec<u64> = Vec::new();
    let mut mem_alloc_counts: Vec<u64> = Vec::new();
    let mut allocs0 = dbtune_obs::memprof::global_stats().alloc_count;
    let mut phase_secs: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    // Per-span over repeats: (count, min, p50, p99), minima over repeats
    // for the time fields; counts must agree.
    let mut span_agg: BTreeMap<String, (u64, u64, u64, u64)> = BTreeMap::new();

    for repeat in 0..repeats {
        let journal_path =
            scratch.join(format!("dbtune_perf_baseline_{}_{repeat}.jsonl", std::process::id()));
        if let Err(e) = tele.enable_journal(&journal_path, "perf_baseline") {
            eprintln!("perf_baseline: cannot open {}: {e}", journal_path.display());
            return ExitCode::from(2);
        }
        let evals0 = tele.metrics.counter("sim.evals").get();
        let crashes0 = tele.metrics.counter("sim.crashes").get();

        let opts = GridOpts {
            workers,
            cache: true,
            noise_seed: SEED,
            faults: dbtune_dbsim::FaultPlan::disabled(),
            retry: dbtune_core::RetryPolicy::none(),
        };
        let t0 = std::time::Instant::now(); // lint: allow(D2) wall-clock benchmark report — timing is the deliverable
        let (results, exec) = run_tuning_grid(&cells, &opts);
        let wall = t0.elapsed().as_secs_f64();

        tele.flush_metrics();
        tele.journal.disable();
        let summary = match std::fs::read_to_string(&journal_path)
            .map_err(|e| e.to_string())
            .and_then(|text| dbtune_trace::load_journal_str(&text))
        {
            Ok(journal) => summarize(&journal),
            Err(e) => {
                eprintln!("perf_baseline: repeat {repeat} journal: {e}");
                return ExitCode::from(2);
            }
        };
        let _ = std::fs::remove_file(&journal_path);

        // Deterministic results block for this repeat.
        let cell_values: Vec<Value> = MATRIX
            .iter()
            .zip(&results)
            .map(|(&(workload, opt_kind), result)| {
                obj(vec![
                    ("workload", str_value(workload.name())),
                    ("optimizer", str_value(opt_kind.label())),
                    ("best_improvement", Value::Number(Number::Float(result.best_improvement()))),
                ])
            })
            .collect();
        let counters = obj(vec![
            ("exec.cache.hits", uint(exec.cache.hits)),
            ("exec.cache.misses", uint(exec.cache.misses)),
            ("exec.cache.entries", uint(exec.cache.entries)),
            ("exec.cells", uint(summary.cells)),
            ("sim.evals", uint(tele.metrics.counter("sim.evals").get() - evals0)),
            ("sim.crashes", uint(tele.metrics.counter("sim.crashes").get() - crashes0)),
        ]);
        results_blocks
            .push(obj(vec![("cells", Value::Array(cell_values)), ("counters", counters)]));

        // Timing for this repeat.
        wall_secs.push(wall);
        let (mut fit, mut acq, mut book, mut eval) = (0.0, 0.0, 0.0, 0.0);
        for result in &results {
            let (f, a, b) = result.phases.overhead_totals();
            fit += f;
            acq += a;
            book += b;
            eval += result.phases.evaluate_secs.iter().sum::<f64>();
        }
        for (name, total) in [
            ("surrogate_fit_secs", fit),
            ("acquisition_secs", acq),
            ("bookkeeping_secs", book),
            ("evaluate_secs", eval),
        ] {
            phase_secs.entry(name).or_default().push(total);
        }
        for (name, span) in &summary.spans {
            span_agg
                .entry(name.clone())
                .and_modify(|(count, min, p50, p99)| {
                    if *count != span.count {
                        eprintln!(
                            "perf_baseline: span '{name}' count drifted across repeats \
                             ({count} vs {}) — determinism bug",
                            span.count
                        );
                        std::process::exit(1);
                    }
                    *min = (*min).min(span.min_nanos);
                    *p50 = (*p50).min(span.p50_nanos);
                    *p99 = (*p99).min(span.p99_nanos);
                })
                .or_insert((span.count, span.min_nanos, span.p50_nanos, span.p99_nanos));
        }
        let mem = dbtune_obs::memprof::global_stats();
        mem_peak_bytes.push(mem.peak_bytes);
        mem_alloc_counts.push(mem.alloc_count - allocs0);
        allocs0 = mem.alloc_count;
        println!(
            "[repeat {}/{repeats}] wall={wall:.2}s cells={} cache hits={} misses={} \
             peak_bytes={} allocs={}",
            repeat + 1,
            summary.cells,
            exec.cache.hits,
            exec.cache.misses,
            mem.peak_bytes,
            mem_alloc_counts.last().copied().unwrap_or(0),
        );
    }

    // The determinism contract, enforced: every repeat must produce the
    // same results block (fresh cache per repeat, fixed seeds).
    for (repeat, block) in results_blocks.iter().enumerate().skip(1) {
        if block != &results_blocks[0] {
            eprintln!(
                "perf_baseline: results block of repeat {repeat} differs from repeat 0 — \
                 determinism bug; not writing a baseline"
            );
            return ExitCode::from(1);
        }
    }

    let artifact = obj(vec![
        ("schema", uint(1)),
        (
            "build",
            obj(vec![
                ("version", str_value(env!("CARGO_PKG_VERSION"))),
                ("profile", str_value(if cfg!(debug_assertions) { "debug" } else { "release" })),
                ("workers", uint(workers as u64)),
                ("repeats", uint(repeats as u64)),
                ("iters", uint(iters as u64)),
                ("knobs", uint(KNOBS as u64)),
                ("seed", uint(SEED)),
                (
                    "matrix",
                    Value::Array(
                        MATRIX
                            .iter()
                            .map(|&(w, o)| str_value(&format!("{}/{}", w.name(), o.label())))
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("results", results_blocks.swap_remove(0)),
        (
            "timing",
            obj(vec![
                ("wall_secs", Value::Array(wall_secs.iter().map(|&s| float(s)).collect())),
                (
                    "phases",
                    Value::Object(
                        phase_secs
                            .iter()
                            .map(|(name, series)| {
                                (
                                    name.to_string(),
                                    Value::Array(series.iter().map(|&s| float(s)).collect()),
                                )
                            })
                            .collect(),
                    ),
                ),
                (
                    "spans",
                    Value::Object(
                        span_agg
                            .iter()
                            .map(|(name, &(count, min, p50, p99))| {
                                (
                                    name.clone(),
                                    obj(vec![
                                        ("count", uint(count)),
                                        ("min_nanos", uint(min)),
                                        ("p50_nanos", uint(p50)),
                                        ("p99_nanos", uint(p99)),
                                    ]),
                                )
                            })
                            .collect(),
                    ),
                ),
                (
                    "mem",
                    obj(vec![
                        (
                            "peak_bytes",
                            Value::Array(mem_peak_bytes.iter().map(|&b| uint(b)).collect()),
                        ),
                        (
                            "alloc_count",
                            Value::Array(mem_alloc_counts.iter().map(|&c| uint(c)).collect()),
                        ),
                    ]),
                ),
            ]),
        ),
    ]);

    let write_path = PathBuf::from(&write);
    let text = match serde_json::to_string_pretty(&artifact) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_baseline: cannot serialize artifact: {e:?}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = std::fs::write(&write_path, text + "\n") {
        eprintln!("perf_baseline: cannot write {}: {e}", write_path.display());
        return ExitCode::from(2);
    }
    println!("[wrote {}]", write_path.display());

    if against.is_empty() {
        return ExitCode::SUCCESS;
    }
    let against_path = Path::new(&against);
    if !against_path.exists() {
        println!("[no baseline at {against} — nothing to compare]");
        return ExitCode::SUCCESS;
    }
    let (base, cur) = match (
        load_json_file(against_path).and_then(|v| parse_perf_baseline(&v)),
        parse_perf_baseline(&artifact),
    ) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("perf_baseline: {e}");
            return ExitCode::from(2);
        }
    };
    let entries = diff_baselines(&base, &cur, &DiffConfig::default());
    // Memory columns never gate: `mem:` keys come from allocator-level
    // accounting that unrelated library changes can legitimately move,
    // so they are reported like `mode=warn` wall time even under
    // `mode=gate`.
    let (mem_flagged, flagged): (Vec<_>, Vec<_>) =
        entries.iter().filter(|e| e.flagged).partition(|e| e.key.starts_with("mem:"));
    println!("\n[diff vs {against}: {} keys compared]", entries.len());
    let fmt = |v: Option<f64>| v.map_or("—".to_string(), |v: f64| format!("{v:.0}"));
    if !mem_flagged.is_empty() {
        println!("{} memory delta(s) (warn-only):", mem_flagged.len());
        for entry in &mem_flagged {
            println!(
                "  {:<36} {:>14} -> {:<14} {}",
                entry.key,
                fmt(entry.base),
                fmt(entry.cur),
                entry.note
            );
        }
    }
    if flagged.is_empty() {
        println!("OK — deterministic results identical, no wall-time regressions");
        return ExitCode::SUCCESS;
    }
    println!("{} flagged delta(s):", flagged.len());
    for entry in &flagged {
        println!(
            "  {:<36} {:>14} -> {:<14} {}",
            entry.key,
            fmt(entry.base),
            fmt(entry.cur),
            entry.note
        );
    }
    if gate {
        ExitCode::from(1)
    } else {
        println!("\n(mode=warn: exiting 0; use mode=gate to fail)");
        ExitCode::SUCCESS
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn str_value(s: &str) -> Value {
    Value::String(s.to_string())
}

fn uint(v: u64) -> Value {
    Value::Number(Number::PosInt(v))
}

fn float(v: f64) -> Value {
    Value::Number(Number::Float(v))
}
