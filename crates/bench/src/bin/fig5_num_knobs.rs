// Driver binary: exempt from the unwrap ban (lint rule E1 and its clippy
// twin unwrap_used) — a panic here aborts one experiment run, not a
// library caller.
#![allow(clippy::unwrap_used)]
//! Figure 5: performance improvement and tuning cost as the number of
//! tuned knobs grows (SHAP ranking, vanilla BO, JOB & SYSBENCH).
//!
//! "Tuning cost" is the iteration at which the best configuration of the
//! session was first found — the paper's definition.
//!
//! Arguments: `samples=6250 iters=240 seeds=1 workers= cache=on`
//! (paper: 6250/600/3). Sessions run on the parallel executor; nested
//! knob sets (top-5 ⊂ top-10 ⊂ …) revisit configurations, which the
//! shared cache deduplicates.

use dbtune_bench::{
    full_pool, pct, print_exec_summary, print_table, run_tuning_grid, save_json_with_exec,
    top_k_knobs, ExpArgs, GridOpts, TuningCell,
};
use dbtune_core::importance::MeasureKind;
use dbtune_core::optimizer::OptimizerKind;
use dbtune_dbsim::{DbSimulator, Hardware, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    workload: String,
    n_knobs: usize,
    median_improvement: f64,
    median_cost_iters: f64,
}

fn main() {
    let _trace_flush = dbtune_bench::flush_guard();
    let args = ExpArgs::parse();
    let samples = args.get_usize("samples", 6250);
    let iters = args.get_usize("iters", 240);
    let seeds = args.get_usize("seeds", 1);

    let catalog = DbSimulator::new(Workload::Job, Hardware::B, 0).catalog().clone();
    let knob_counts = [5usize, 10, 20, 40, 80, 197];

    let opts = GridOpts::from_args("fig5_num_knobs", &args, 500);

    let mut grid: Vec<TuningCell> = Vec::new();
    let mut scenarios: Vec<(Workload, usize)> = Vec::new();
    for &wl in &[Workload::Job, Workload::Sysbench] {
        let pool = full_pool(wl, samples, 7);
        let full_rank = top_k_knobs(MeasureKind::Shap, &catalog, &pool, 197, 11);
        for &k in &knob_counts {
            scenarios.push((wl, k));
            for s in 0..seeds {
                grid.push(TuningCell {
                    workload: wl,
                    selected: full_rank[..k].to_vec(),
                    opt_kind: OptimizerKind::VanillaBo,
                    iters,
                    seed: 500 + s as u64,
                });
            }
        }
    }
    let (results, exec) = run_tuning_grid(&grid, &opts);

    let mut points: Vec<Point> = Vec::new();
    for ((wl, k), chunk) in scenarios.iter().zip(results.chunks(seeds)) {
        let improvements: Vec<f64> = chunk.iter().map(|r| r.best_improvement()).collect();
        let costs: Vec<f64> = chunk.iter().map(|r| r.iterations_to_best() as f64).collect();
        let point = Point {
            workload: wl.name().to_string(),
            n_knobs: *k,
            median_improvement: dbtune_bench::median(&improvements),
            median_cost_iters: dbtune_bench::median(&costs),
        };
        eprintln!(
            "[{} k={}] improvement {}, cost {:.0} iters",
            wl.name(),
            k,
            pct(point.median_improvement),
            point.median_cost_iters
        );
        points.push(point);
    }

    for &wl in &[Workload::Job, Workload::Sysbench] {
        println!("\n== Figure 5 ({}): improvement & tuning cost vs #knobs ==", wl.name());
        let rows: Vec<Vec<String>> = points
            .iter()
            .filter(|p| p.workload == wl.name())
            .map(|p| {
                vec![
                    p.n_knobs.to_string(),
                    pct(p.median_improvement),
                    format!("{:.0}", p.median_cost_iters),
                ]
            })
            .collect();
        print_table(&["#knobs", "Median improvement", "Tuning cost (iters)"], &rows);
    }

    print_exec_summary(&exec);
    save_json_with_exec("fig5_num_knobs", &points, &exec);
}
