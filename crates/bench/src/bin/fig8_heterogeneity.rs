// Driver binary: exempt from the unwrap ban (lint rule E1 and its clippy
// twin unwrap_used) — a panic here aborts one experiment run, not a
// library caller.
#![allow(clippy::unwrap_used)]
//! Figure 8: the knob-heterogeneity comparison (JOB).
//!
//! Control group: the top-20 *numeric* knobs (continuous space). Test
//! group: the top-5 categorical knobs plus the top-15 integer knobs
//! (heterogeneous space). Vanilla BO, mixed-kernel BO, SMAC, and DDPG run
//! on both; the gap between vanilla and mixed-kernel BO on the
//! heterogeneous space is the experiment's point.
//!
//! Arguments: `samples=6250 iters=120 seeds=1 workers= cache=on`
//! (paper: 6250/200/3). Sessions run on the parallel executor; the four
//! optimizers on one space share their LHS warm-up via the cache.

use dbtune_bench::{
    full_pool, importance_scores, pct, print_exec_summary, print_table, run_tuning_grid,
    save_json_with_exec, ExpArgs, GridOpts, TuningCell,
};
use dbtune_core::importance::MeasureKind;
use dbtune_core::optimizer::OptimizerKind;
use dbtune_dbsim::{DbSimulator, Hardware, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Run {
    space: String,
    optimizer: String,
    improvement_trace: Vec<f64>,
    best_improvement: f64,
}

fn main() {
    let _trace_flush = dbtune_bench::flush_guard();
    let args = ExpArgs::parse();
    let samples = args.get_usize("samples", 6250);
    let iters = args.get_usize("iters", 120);
    let seeds = args.get_usize("seeds", 1);

    let catalog = DbSimulator::new(Workload::Job, Hardware::B, 0).catalog().clone();
    let pool = full_pool(Workload::Job, samples, 7);
    let scores = importance_scores(MeasureKind::Shap, &catalog, &pool, 11);

    // Ranked indices restricted to a knob class.
    let ranked_where = |pred: &dyn Fn(usize) -> bool, k: usize| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..catalog.len()).filter(|&i| pred(i)).collect();
        idx.sort_by(|&a, &b| {
            dbtune_core::ord::cmp_score_desc(&scores[a], &scores[b]).then(a.cmp(&b))
        });
        idx.truncate(k);
        idx
    };
    let continuous_20 = ranked_where(&|i| !catalog.spec(i).domain.is_categorical(), 20);
    let mut hetero = ranked_where(&|i| catalog.spec(i).domain.is_categorical(), 5);
    hetero.extend(ranked_where(&|i| catalog.spec(i).domain.is_integer(), 15));

    eprintln!(
        "continuous space: {:?}",
        continuous_20.iter().map(|&i| catalog.spec(i).name).collect::<Vec<_>>()
    );
    eprintln!(
        "heterogeneous space: {:?}",
        hetero.iter().map(|&i| catalog.spec(i).name).collect::<Vec<_>>()
    );

    let optimizers = [
        OptimizerKind::VanillaBo,
        OptimizerKind::MixedKernelBo,
        OptimizerKind::Smac,
        OptimizerKind::Ddpg,
    ];
    let spaces: [(&str, &Vec<usize>); 2] =
        [("continuous", &continuous_20), ("heterogeneous", &hetero)];

    let opts = GridOpts::from_args("fig8_heterogeneity", &args, 800);
    let mut grid: Vec<TuningCell> = Vec::new();
    let mut scenarios: Vec<(&str, OptimizerKind)> = Vec::new();
    for &(label, selected) in &spaces {
        for &opt in &optimizers {
            scenarios.push((label, opt));
            for s in 0..seeds {
                grid.push(TuningCell {
                    workload: Workload::Job,
                    selected: selected.clone(),
                    opt_kind: opt,
                    iters,
                    seed: 800 + s as u64,
                });
            }
        }
    }
    let (results, exec) = run_tuning_grid(&grid, &opts);

    let mut runs: Vec<Run> = Vec::new();
    for ((label, opt), chunk) in scenarios.iter().zip(results.chunks(seeds)) {
        let traces: Vec<Vec<f64>> = chunk.iter().map(|r| r.improvement_trace()).collect();
        let trace: Vec<f64> = (0..iters)
            .map(|i| {
                let vals: Vec<f64> = traces.iter().map(|t| t[i]).collect();
                dbtune_bench::median(&vals)
            })
            .collect();
        let best = *trace.last().expect("nonempty");
        eprintln!("[{label} {}] best {}", opt.label(), pct(best));
        runs.push(Run {
            space: label.to_string(),
            optimizer: opt.label().to_string(),
            improvement_trace: trace,
            best_improvement: best,
        });
    }

    for &(label, _) in &spaces {
        println!("\n== Figure 8 ({label} space, JOB latency improvement) ==");
        let checkpoints: Vec<usize> = [0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|f| ((iters as f64 * f) as usize).max(1) - 1)
            .collect();
        let rows: Vec<Vec<String>> = runs
            .iter()
            .filter(|r| r.space == label)
            .map(|r| {
                let mut row = vec![r.optimizer.clone()];
                for &c in &checkpoints {
                    row.push(pct(r.improvement_trace[c]));
                }
                row
            })
            .collect();
        let headers: Vec<String> = std::iter::once("Optimizer".to_string())
            .chain(checkpoints.iter().map(|c| format!("iter {}", c + 1)))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        print_table(&header_refs, &rows);
    }

    let get = |space: &str, opt: &str| {
        runs.iter()
            .find(|r| r.space == space && r.optimizer == opt)
            .expect("run recorded")
            .best_improvement
    };
    println!(
        "\nHeterogeneous-space gap: mixed-kernel BO {} vs vanilla BO {} (continuous-space gap: {} vs {})",
        pct(get("heterogeneous", "Mixed-Kernel BO")),
        pct(get("heterogeneous", "Vanilla BO")),
        pct(get("continuous", "Mixed-Kernel BO")),
        pct(get("continuous", "Vanilla BO")),
    );

    print_exec_summary(&exec);
    save_json_with_exec("fig8_heterogeneity", &runs, &exec);
}
