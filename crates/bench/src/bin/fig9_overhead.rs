//! Figure 9: algorithm overhead — the wall-clock time each optimizer
//! spends choosing the next configuration, as the iteration count grows
//! (JOB, medium space). The global GP methods show the cubic blow-up; the
//! forest/heuristic methods stay flat.
//!
//! Arguments: `samples=6250 iters=400 workers= cache=on` (paper:
//! 6250/400). Sessions run on the parallel executor. Note: the measured
//! overheads are wall-clock times, so — unlike every other driver — the
//! `"results"` payload is inherently not byte-reproducible across runs
//! (the improvement traces and cache counters still are).

use dbtune_bench::{
    full_pool, print_table, run_tuning_grid, save_json_with_exec, top_k_knobs, ExpArgs, GridOpts,
    TuningCell,
};
use dbtune_core::importance::MeasureKind;
use dbtune_core::optimizer::OptimizerKind;
use dbtune_dbsim::{DbSimulator, Hardware, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    optimizer: String,
    /// Per-iteration suggest() time, seconds.
    overhead_secs: Vec<f64>,
    total_secs: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let samples = args.get_usize("samples", 6250);
    let iters = args.get_usize("iters", 400);

    let catalog = DbSimulator::new(Workload::Job, Hardware::B, 0).catalog().clone();
    let pool = full_pool(Workload::Job, samples, 7);
    let selected = top_k_knobs(MeasureKind::Shap, &catalog, &pool, 20, 11);

    let opts = GridOpts::from_args(&args, 900);
    let grid: Vec<TuningCell> = OptimizerKind::PAPER
        .iter()
        .map(|&opt| TuningCell {
            workload: Workload::Job,
            selected: selected.clone(),
            opt_kind: opt,
            iters,
            seed: 900,
        })
        .collect();
    let (results, exec) = run_tuning_grid(&grid, &opts);

    let mut series: Vec<Series> = Vec::new();
    for (opt, r) in OptimizerKind::PAPER.iter().zip(results) {
        let total: f64 = r.overhead_secs.iter().sum();
        eprintln!("[{}] total overhead {:.2}s over {iters} iterations", opt.label(), total);
        series.push(Series {
            optimizer: opt.label().to_string(),
            overhead_secs: r.overhead_secs,
            total_secs: total,
        });
    }

    println!("\n== Figure 9: per-iteration algorithm overhead (seconds) ==");
    let checkpoints: Vec<usize> = [50usize, 100, 200, 300, 400]
        .iter()
        .copied()
        .filter(|&c| c <= iters)
        .collect();
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            let mut row = vec![s.optimizer.clone()];
            for &c in &checkpoints {
                // Average over a small window around the checkpoint to
                // smooth scheduler jitter.
                let lo = c.saturating_sub(5).max(1) - 1;
                let hi = c.min(s.overhead_secs.len());
                let window = &s.overhead_secs[lo..hi];
                row.push(format!("{:.4}", dbtune_linalg::stats::mean(window)));
            }
            row.push(format!("{:.2}", s.total_secs));
            row
        })
        .collect();
    let headers: Vec<String> = std::iter::once("Optimizer".to_string())
        .chain(checkpoints.iter().map(|c| format!("@iter {c}")))
        .chain(std::iter::once("total (s)".to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(&header_refs, &rows);

    println!(
        "\n[exec] workers={} cache hits={} misses={} entries={}",
        exec.workers, exec.cache.hits, exec.cache.misses, exec.cache.entries
    );
    save_json_with_exec("fig9_overhead", &series, &exec);
}
