// Driver binary: exempt from the unwrap ban (lint rule E1 and its clippy
// twin unwrap_used) — a panic here aborts one experiment run, not a
// library caller.
#![allow(clippy::unwrap_used)]
//! Figure 9: algorithm overhead — the wall-clock time each optimizer
//! spends choosing the next configuration, as the iteration count grows
//! (JOB, medium space), decomposed into surrogate-fit, acquisition, and
//! bookkeeping phases. The global GP methods show the cubic blow-up; the
//! forest/heuristic methods stay flat.
//!
//! Arguments: `samples=6250 iters=400 workers= cache=on trace=` (paper:
//! 6250/400). Sessions run on the parallel executor. The `"results"`
//! payload carries only deterministic fields (optimizer, improvement);
//! the wall-clock phase series live in the `"telemetry"` block under
//! `"driver"`, where non-reproducible numbers belong.

use dbtune_bench::{
    full_pool, print_exec_summary, print_table, run_tuning_grid, save_json_with_telemetry,
    top_k_knobs, ExpArgs, GridOpts, TuningCell,
};
use dbtune_core::importance::MeasureKind;
use dbtune_core::optimizer::OptimizerKind;
use dbtune_dbsim::{DbSimulator, Hardware, Workload};
use serde::{Number, Serialize, Value};

/// Deterministic per-optimizer summary: byte-identical across runs,
/// worker counts, and trace on/off.
#[derive(Serialize)]
struct Row {
    optimizer: String,
    best_improvement: f64,
}

/// Wall-clock phase decomposition for one optimizer. Lives in the
/// `"telemetry"."driver"` block, never in `"results"`.
struct PhaseSeries {
    optimizer: String,
    overhead_secs: Vec<f64>,
    fit_secs: f64,
    acq_secs: f64,
    book_secs: f64,
}

impl PhaseSeries {
    fn total(&self) -> f64 {
        self.overhead_secs.iter().sum()
    }

    fn to_value(&self) -> Value {
        let series = self.overhead_secs.iter().map(|&s| Value::Number(Number::Float(s))).collect();
        Value::Object(vec![
            ("optimizer".to_string(), Value::String(self.optimizer.clone())),
            ("overhead_secs".to_string(), Value::Array(series)),
            ("surrogate_fit_secs".to_string(), Value::Number(Number::Float(self.fit_secs))),
            ("acquisition_secs".to_string(), Value::Number(Number::Float(self.acq_secs))),
            ("bookkeeping_secs".to_string(), Value::Number(Number::Float(self.book_secs))),
            ("total_secs".to_string(), Value::Number(Number::Float(self.total()))),
        ])
    }
}

fn main() {
    let _trace_flush = dbtune_bench::flush_guard();
    let args = ExpArgs::parse();
    let samples = args.get_usize("samples", 6250);
    let iters = args.get_usize("iters", 400);

    let catalog = DbSimulator::new(Workload::Job, Hardware::B, 0).catalog().clone();
    let pool = full_pool(Workload::Job, samples, 7);
    let selected = top_k_knobs(MeasureKind::Shap, &catalog, &pool, 20, 11);

    let opts = GridOpts::from_args("fig9_overhead", &args, 900);
    let grid: Vec<TuningCell> = OptimizerKind::PAPER
        .iter()
        .map(|&opt| TuningCell {
            workload: Workload::Job,
            selected: selected.clone(),
            opt_kind: opt,
            iters,
            seed: 900,
        })
        .collect();
    let (results, exec) = run_tuning_grid(&grid, &opts);

    let mut rows: Vec<Row> = Vec::new();
    let mut phase_series: Vec<PhaseSeries> = Vec::new();
    for (opt, r) in OptimizerKind::PAPER.iter().zip(results) {
        let (fit, acq, book) = r.phases.overhead_totals();
        eprintln!(
            "[{}] overhead {:.2}s = fit {:.2}s + acq {:.2}s + bookkeeping {:.2}s",
            opt.label(),
            fit + acq + book,
            fit,
            acq,
            book
        );
        rows.push(Row {
            optimizer: opt.label().to_string(),
            best_improvement: r.best_improvement(),
        });
        phase_series.push(PhaseSeries {
            optimizer: opt.label().to_string(),
            overhead_secs: r.overhead_secs,
            fit_secs: fit,
            acq_secs: acq,
            book_secs: book,
        });
    }

    println!("\n== Figure 9: per-iteration algorithm overhead (seconds) ==");
    let checkpoints: Vec<usize> =
        [50usize, 100, 200, 300, 400].iter().copied().filter(|&c| c <= iters).collect();
    let table_rows: Vec<Vec<String>> = phase_series
        .iter()
        .map(|s| {
            let mut row = vec![s.optimizer.clone()];
            for &c in &checkpoints {
                // Average over a small window ending at the checkpoint to
                // smooth scheduler jitter; skip windows the (possibly
                // short) series cannot fill.
                let lo = c.saturating_sub(5);
                let hi = c.min(s.overhead_secs.len());
                if lo >= hi {
                    row.push("-".to_string());
                    continue;
                }
                let window = &s.overhead_secs[lo..hi];
                row.push(format!("{:.4}", dbtune_linalg::stats::mean(window)));
            }
            row.push(format!("{:.2}", s.total()));
            row
        })
        .collect();
    let headers: Vec<String> = std::iter::once("Optimizer".to_string())
        .chain(checkpoints.iter().map(|c| format!("@iter {c}")))
        .chain(std::iter::once("total (s)".to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(&header_refs, &table_rows);

    println!("\n== Figure 9: overhead decomposition by phase (seconds) ==");
    let phase_rows: Vec<Vec<String>> = phase_series
        .iter()
        .map(|s| {
            vec![
                s.optimizer.clone(),
                format!("{:.2}", s.fit_secs),
                format!("{:.2}", s.acq_secs),
                format!("{:.2}", s.book_secs),
                format!("{:.2}", s.total()),
            ]
        })
        .collect();
    print_table(
        &["Optimizer", "surrogate fit", "acquisition", "bookkeeping", "total"],
        &phase_rows,
    );

    print_exec_summary(&exec);
    let driver = Value::Object(vec![(
        "phase_series".to_string(),
        Value::Array(phase_series.iter().map(PhaseSeries::to_value).collect()),
    )]);
    save_json_with_telemetry("fig9_overhead", &rows, &exec, Some(driver));
}
