//! Figure 6: incremental knob selection — increasing (OtterTune-style)
//! vs decreasing (Tuneful-style) the number of tuned knobs over the
//! session, against fixed top-5 and top-20 baselines (SHAP ranking,
//! vanilla BO, JOB & SYSBENCH).
//!
//! Arguments: `samples=6250 iters=120 seeds=1` (paper: 6250/200/3).

use dbtune_bench::{full_pool, pct, print_table, save_json, top_k_knobs, ExpArgs};
use dbtune_core::importance::MeasureKind;
use dbtune_core::incremental::{run_incremental_session, IncrementalStrategy};
use dbtune_core::optimizer::{BoKind, BoOptimizer, Optimizer};
use dbtune_core::space::ConfigSpace;
use dbtune_core::tuner::SessionConfig;
use dbtune_dbsim::{DbSimulator, Hardware, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    workload: String,
    strategy: String,
    improvement_trace: Vec<f64>,
    best_improvement: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let samples = args.get_usize("samples", 6250);
    let iters = args.get_usize("iters", 120);
    let seeds = args.get_usize("seeds", 1);

    let catalog = DbSimulator::new(Workload::Job, Hardware::B, 0).catalog().clone();
    let make_opt = |space: &ConfigSpace, _seed: u64| -> Box<dyn Optimizer> {
        Box::new(BoOptimizer::new(space.clone(), BoKind::Vanilla))
    };

    let mut series: Vec<Series> = Vec::new();
    for &wl in &[Workload::Job, Workload::Sysbench] {
        let pool = full_pool(wl, samples, 7);
        let ranked = top_k_knobs(MeasureKind::Shap, &catalog, &pool, 40, 11);
        let phase = (iters / 6).max(10);

        let strategies: Vec<(String, IncrementalStrategy)> = vec![
            (
                "Fixed top-5".into(),
                IncrementalStrategy::Increase { start: 5, step: 0, every: iters.max(1), cap: 5 },
            ),
            (
                "Fixed top-20".into(),
                IncrementalStrategy::Increase { start: 20, step: 0, every: iters.max(1), cap: 20 },
            ),
            (
                "Increase 4->20".into(),
                IncrementalStrategy::Increase { start: 4, step: 4, every: phase, cap: 20 },
            ),
            (
                "Decrease 20->4".into(),
                IncrementalStrategy::Decrease { start: 20, step: 4, every: phase, floor: 4 },
            ),
        ];

        for (label, strategy) in strategies {
            let mut traces: Vec<Vec<f64>> = Vec::new();
            for s in 0..seeds {
                let mut sim = DbSimulator::new(wl, Hardware::B, 600 + s as u64);
                let base = catalog.default_config(Hardware::B);
                let r = run_incremental_session(
                    &mut sim,
                    &catalog,
                    &base,
                    &ranked,
                    strategy,
                    &make_opt,
                    &SessionConfig { iterations: iters, lhs_init: 10, seed: 600 + s as u64, ..Default::default() },
                );
                traces.push(r.improvement_trace());
            }
            // Median trace across seeds.
            let trace: Vec<f64> = (0..iters)
                .map(|i| {
                    let vals: Vec<f64> = traces.iter().map(|t| t[i]).collect();
                    dbtune_bench::median(&vals)
                })
                .collect();
            let best = *trace.last().expect("nonempty trace");
            eprintln!("[{} {}] final improvement {}", wl.name(), label, pct(best));
            series.push(Series {
                workload: wl.name().to_string(),
                strategy: label,
                improvement_trace: trace,
                best_improvement: best,
            });
        }
    }

    for &wl in &[Workload::Job, Workload::Sysbench] {
        println!("\n== Figure 6 ({}): best improvement over iterations ==", wl.name());
        let checkpoints: Vec<usize> =
            [0.2, 0.4, 0.6, 0.8, 1.0].iter().map(|f| ((iters as f64 * f) as usize).max(1) - 1).collect();
        let rows: Vec<Vec<String>> = series
            .iter()
            .filter(|s| s.workload == wl.name())
            .map(|s| {
                let mut row = vec![s.strategy.clone()];
                for &c in &checkpoints {
                    row.push(pct(s.improvement_trace[c]));
                }
                row
            })
            .collect();
        let headers: Vec<String> = std::iter::once("Strategy".to_string())
            .chain(checkpoints.iter().map(|c| format!("iter {}", c + 1)))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        print_table(&header_refs, &rows);
    }

    save_json("fig6_incremental", &series);
}
