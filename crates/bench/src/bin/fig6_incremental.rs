// Driver binary: exempt from the unwrap ban (lint rule E1 and its clippy
// twin unwrap_used) — a panic here aborts one experiment run, not a
// library caller.
#![allow(clippy::unwrap_used)]
//! Figure 6: incremental knob selection — increasing (OtterTune-style)
//! vs decreasing (Tuneful-style) the number of tuned knobs over the
//! session, against fixed top-5 and top-20 baselines (SHAP ranking,
//! vanilla BO, JOB & SYSBENCH).
//!
//! Arguments: `samples=6250 iters=120 seeds=1 workers= cache=on`
//! (paper: 6250/200/3). The four strategies per workload run
//! concurrently on the executor and share cached evaluations (all four
//! search prefixes of the same SHAP ranking).

use dbtune_bench::{
    full_pool, pct, print_exec_summary, print_table, save_json_with_exec, top_k_knobs, ExpArgs,
    GridOpts,
};
use dbtune_core::exec::{run_grid, CachedObjective};
use dbtune_core::importance::MeasureKind;
use dbtune_core::incremental::{run_incremental_session, IncrementalStrategy};
use dbtune_core::optimizer::{BoKind, BoOptimizer, Optimizer};
use dbtune_core::space::ConfigSpace;
use dbtune_core::tuner::SessionConfig;
use dbtune_dbsim::{DbSimulator, Hardware, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    workload: String,
    strategy: String,
    improvement_trace: Vec<f64>,
    best_improvement: f64,
}

fn main() {
    let _trace_flush = dbtune_bench::flush_guard();
    let args = ExpArgs::parse();
    let samples = args.get_usize("samples", 6250);
    let iters = args.get_usize("iters", 120);
    let seeds = args.get_usize("seeds", 1);

    let catalog = DbSimulator::new(Workload::Job, Hardware::B, 0).catalog().clone();
    let make_opt = |space: &ConfigSpace, _seed: u64| -> Box<dyn Optimizer> {
        Box::new(BoOptimizer::new(space.clone(), BoKind::Vanilla))
    };

    struct Cell {
        wl: Workload,
        strategy: IncrementalStrategy,
        ranked: Vec<usize>,
        seed: u64,
    }

    let opts = GridOpts::from_args("fig6_incremental", &args, 600);
    let phase = (iters / 6).max(10);
    let strategies: Vec<(&str, IncrementalStrategy)> = vec![
        (
            "Fixed top-5",
            IncrementalStrategy::Increase { start: 5, step: 0, every: iters.max(1), cap: 5 },
        ),
        (
            "Fixed top-20",
            IncrementalStrategy::Increase { start: 20, step: 0, every: iters.max(1), cap: 20 },
        ),
        (
            "Increase 4->20",
            IncrementalStrategy::Increase { start: 4, step: 4, every: phase, cap: 20 },
        ),
        (
            "Decrease 20->4",
            IncrementalStrategy::Decrease { start: 20, step: 4, every: phase, floor: 4 },
        ),
    ];

    let mut grid: Vec<Cell> = Vec::new();
    let mut scenarios: Vec<(Workload, &str)> = Vec::new();
    for &wl in &[Workload::Job, Workload::Sysbench] {
        let pool = full_pool(wl, samples, 7);
        let ranked = top_k_knobs(MeasureKind::Shap, &catalog, &pool, 40, 11);
        for &(label, strategy) in &strategies {
            scenarios.push((wl, label));
            for s in 0..seeds {
                grid.push(Cell { wl, strategy, ranked: ranked.clone(), seed: 600 + s as u64 });
            }
        }
    }

    let cache = opts.make_cache();
    let results = run_grid(&grid, opts.workers, |_, cell| {
        let sim = DbSimulator::new(cell.wl, Hardware::B, cell.seed);
        let base = catalog.default_config(Hardware::B);
        let mut obj = CachedObjective::new(sim, cache.clone(), opts.noise_seed);
        run_incremental_session(
            &mut obj,
            &catalog,
            &base,
            &cell.ranked,
            cell.strategy,
            &make_opt,
            &SessionConfig {
                iterations: iters,
                lhs_init: 10,
                seed: cell.seed,
                ..Default::default()
            },
        )
    });
    let exec = opts.report(cache.as_ref());

    let mut series: Vec<Series> = Vec::new();
    for ((wl, label), chunk) in scenarios.iter().zip(results.chunks(seeds)) {
        let traces: Vec<Vec<f64>> = chunk.iter().map(|r| r.improvement_trace()).collect();
        // Median trace across seeds.
        let trace: Vec<f64> = (0..iters)
            .map(|i| {
                let vals: Vec<f64> = traces.iter().map(|t| t[i]).collect();
                dbtune_bench::median(&vals)
            })
            .collect();
        let best = *trace.last().expect("nonempty trace");
        eprintln!("[{} {}] final improvement {}", wl.name(), label, pct(best));
        series.push(Series {
            workload: wl.name().to_string(),
            strategy: label.to_string(),
            improvement_trace: trace,
            best_improvement: best,
        });
    }

    for &wl in &[Workload::Job, Workload::Sysbench] {
        println!("\n== Figure 6 ({}): best improvement over iterations ==", wl.name());
        let checkpoints: Vec<usize> = [0.2, 0.4, 0.6, 0.8, 1.0]
            .iter()
            .map(|f| ((iters as f64 * f) as usize).max(1) - 1)
            .collect();
        let rows: Vec<Vec<String>> = series
            .iter()
            .filter(|s| s.workload == wl.name())
            .map(|s| {
                let mut row = vec![s.strategy.clone()];
                for &c in &checkpoints {
                    row.push(pct(s.improvement_trace[c]));
                }
                row
            })
            .collect();
        let headers: Vec<String> = std::iter::once("Strategy".to_string())
            .chain(checkpoints.iter().map(|c| format!("iter {}", c + 1)))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        print_table(&header_refs, &rows);
    }

    print_exec_summary(&exec);
    save_json_with_exec("fig6_incremental", &series, &exec);
}
