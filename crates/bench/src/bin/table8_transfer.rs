// Driver binary: exempt from the unwrap ban (lint rule E1 and its clippy
// twin unwrap_used) — a panic here aborts one experiment run, not a
// library caller.
#![allow(clippy::unwrap_used)]
//! Table 8: the knowledge-transfer study.
//!
//! Five source tasks (SEATS, Voter, TATP, Smallbank, SIBench) are tuned
//! with DDPG (its training observations become the history for every
//! framework, matching the paper's data-fairness setup); the pre-trained
//! DDPG weights feed the fine-tune baseline. On each target (SYSBENCH,
//! TPC-C, Twitter) the five transfer baselines run 'iters' iterations and
//! are scored by:
//!
//! * **speedup** (Eq. 5) — base-optimizer steps to its own best, divided
//!   by transfer steps to beat that best ("x" when never);
//! * **PE** (Eq. 4) — relative improvement of the transfer best over the
//!   base best;
//! * **APR** — absolute performance rank among the five baselines.
//!
//! Arguments: `samples=6250 iters=120 pretrain=150 workers= cache=on`
//! (paper: 6250/200/300). The DDPG pre-training pass stays sequential
//! (one agent accumulates across the five sources); the 24 target
//! sessions (3 targets × [3 bases + 5 transfer frameworks]) then fan
//! out over the executor, with base and transfer runs of one target
//! sharing cached evaluations.

use dbtune_bench::{
    full_pool, importance_scores, pct, print_exec_summary, print_table, save_json_with_exec,
    ExpArgs, GridOpts,
};
use dbtune_core::exec::{run_grid, CachedObjective, EvalCache};
use dbtune_core::importance::{top_k, MeasureKind};
use dbtune_core::optimizer::{Ddpg, DdpgParams, Optimizer, OptimizerKind};
use dbtune_core::space::TuningSpace;
use dbtune_core::transfer::{
    fine_tuned_ddpg, BaseKind, MappedOptimizer, RgpeOptimizer, SourceTask, SurrogateKind,
};
use dbtune_core::tuner::{run_session, SessionConfig, SessionResult};
use dbtune_dbsim::{DbSimulator, Hardware, Workload, METRICS_DIM};
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct Row {
    target: String,
    framework: String,
    speedup: Option<f64>,
    pe: f64,
    best_value: f64,
    apr: usize,
}

#[allow(clippy::too_many_arguments)]
fn session(
    wl: Workload,
    selected: &[usize],
    opt: &mut dyn Optimizer,
    iters: usize,
    seed: u64,
    cache: Option<Arc<EvalCache>>,
    noise_seed: u64,
) -> SessionResult {
    let sim = DbSimulator::new(wl, Hardware::B, seed);
    let catalog = sim.catalog().clone();
    let space = TuningSpace::with_default_base(&catalog, selected.to_vec(), Hardware::B);
    let mut obj = CachedObjective::new(sim, cache, noise_seed);
    run_session(
        &mut obj,
        &space,
        opt,
        &SessionConfig { iterations: iters, lhs_init: 10, seed, ..Default::default() },
    )
}

fn main() {
    let _trace_flush = dbtune_bench::flush_guard();
    let args = ExpArgs::parse();
    let samples = args.get_usize("samples", 6250);
    let iters = args.get_usize("iters", 120);
    let pretrain = args.get_usize("pretrain", 150);

    let catalog = DbSimulator::new(Workload::Sysbench, Hardware::B, 0).catalog().clone();
    let sources =
        [Workload::Seats, Workload::Voter, Workload::Tatp, Workload::Smallbank, Workload::Sibench];
    let targets = [Workload::Sysbench, Workload::Tpcc, Workload::Twitter];

    // Top-20 knobs "across OLTP workloads": average the normalized SHAP
    // scores over the source-workload pools (no target leakage).
    let mut agg = vec![0.0f64; catalog.len()];
    for &src in &sources {
        let pool = full_pool(src, samples, 7);
        let scores = importance_scores(MeasureKind::Shap, &catalog, &pool, 11);
        let max = scores.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
        for (a, s) in agg.iter_mut().zip(&scores) {
            *a += s / max;
        }
    }
    let selected = top_k(&agg, 20);
    eprintln!(
        "cross-workload top-20 knobs: {:?}",
        selected.iter().map(|&i| catalog.spec(i).name).collect::<Vec<_>>()
    );

    let opts = GridOpts::from_args("table8_transfer", &args, 2000);
    let cache = opts.make_cache();

    // Pre-train DDPG across the five sources in turn (sequential: one
    // agent accumulates); harvest its training observations as the
    // historical data for mapping and RGPE.
    let space0 = TuningSpace::with_default_base(&catalog, selected.clone(), Hardware::B);
    let mut agent = Ddpg::new(space0.space().clone(), METRICS_DIM, DdpgParams::default(), 42);
    let mut source_tasks: Vec<SourceTask> = Vec::new();
    for (i, &src) in sources.iter().enumerate() {
        let r = session(
            src,
            &selected,
            &mut agent,
            pretrain,
            1000 + i as u64,
            cache.clone(),
            opts.noise_seed,
        );
        eprintln!("[pretrain {}] best improvement {}", src.name(), pct(r.best_improvement()));
        source_tasks.push(SourceTask {
            name: src.name().to_string(),
            x: r.observations.iter().map(|o| o.config.clone()).collect(),
            y: r.observations.iter().map(|o| o.score).collect(),
            metrics: r.observations.iter().map(|o| o.metrics.clone()).collect(),
        });
    }
    let weights = agent.export_weights();

    // Grid: 8 runs per target — 3 non-transfer bases then 5 transfer
    // frameworks, every one independent given the pre-trained history.
    const BASES: [&str; 3] = ["Mixed-Kernel BO", "SMAC", "DDPG"];
    const TRANSFERS: [(&str, &str); 5] = [
        ("RGPE (Mixed-Kernel BO)", "Mixed-Kernel BO"),
        ("RGPE (SMAC)", "SMAC"),
        ("Mapping (Mixed-Kernel BO)", "Mixed-Kernel BO"),
        ("Mapping (SMAC)", "SMAC"),
        ("Fine-Tune (DDPG)", "DDPG"),
    ];
    let mut grid: Vec<(Workload, u64, usize)> = Vec::new();
    for (ti, &target) in targets.iter().enumerate() {
        let seed = 2000 + ti as u64;
        for k in 0..BASES.len() + TRANSFERS.len() {
            grid.push((target, seed, k));
        }
    }
    let sessions = run_grid(&grid, opts.workers, |_, &(target, seed, k)| {
        let mut opt: Box<dyn Optimizer> = match k {
            0 => OptimizerKind::MixedKernelBo.build(space0.space(), METRICS_DIM, seed),
            1 => OptimizerKind::Smac.build(space0.space(), METRICS_DIM, seed),
            2 => OptimizerKind::Ddpg.build(space0.space(), METRICS_DIM, seed),
            3 => Box::new(RgpeOptimizer::new(
                space0.space().clone(),
                SurrogateKind::MixedGp,
                &source_tasks,
                seed,
            )),
            4 => Box::new(RgpeOptimizer::new(
                space0.space().clone(),
                SurrogateKind::RandomForest,
                &source_tasks,
                seed,
            )),
            5 => Box::new(MappedOptimizer::new(
                space0.space().clone(),
                BaseKind::MixedBo,
                source_tasks.clone(),
                seed,
            )),
            6 => Box::new(MappedOptimizer::new(
                space0.space().clone(),
                BaseKind::Smac,
                source_tasks.clone(),
                seed,
            )),
            _ => Box::new(fine_tuned_ddpg(
                space0.space().clone(),
                METRICS_DIM,
                &weights,
                DdpgParams::default(),
                seed,
            )),
        };
        session(target, &selected, &mut *opt, iters, seed, cache.clone(), opts.noise_seed)
    });
    let exec = opts.report(cache.as_ref());

    let mut rows: Vec<Row> = Vec::new();
    for (&target, chunk) in targets.iter().zip(sessions.chunks(BASES.len() + TRANSFERS.len())) {
        let base_runs: Vec<(&str, &SessionResult)> =
            BASES.iter().zip(chunk).map(|(&n, r)| (n, r)).collect();
        for (name, r) in &base_runs {
            eprintln!("[{} base {}] best {:.0}", target.name(), name, r.best_value());
        }
        let base = |name: &str| base_runs.iter().find(|(n, _)| *n == name).expect("base run");
        let transfer_runs: Vec<(&str, &str, &SessionResult)> =
            TRANSFERS.iter().zip(&chunk[BASES.len()..]).map(|(&(f, b), r)| (f, b, r)).collect();

        // APR: rank by absolute best value (throughput targets: higher
        // is better).
        let mut order: Vec<usize> = (0..transfer_runs.len()).collect();
        order.sort_by(|&a, &b| {
            let sa = transfer_runs[a].2.best_score();
            let sb = transfer_runs[b].2.best_score();
            dbtune_core::ord::cmp_score_desc(&sa, &sb)
        });
        let apr_of = |i: usize| order.iter().position(|&j| j == i).expect("ranked") + 1;

        for (i, (framework, base_name, r)) in transfer_runs.iter().enumerate() {
            let b = base(base_name).1;
            let base_best = b.best_score();
            let steps_base = b.iterations_to_best();
            let speedup =
                r.iterations_to_beat(base_best).map(|steps| steps_base as f64 / steps as f64);
            // Eq. 4 on raw performance values (all targets are throughput).
            let pe = (r.best_value() - b.best_value()) / b.best_value();
            eprintln!(
                "[{} {}] speedup {:?}, PE {}, APR {}",
                target.name(),
                framework,
                speedup,
                pct(pe),
                apr_of(i)
            );
            rows.push(Row {
                target: target.name().to_string(),
                framework: framework.to_string(),
                speedup,
                pe,
                best_value: r.best_value(),
                apr: apr_of(i),
            });
        }
    }

    println!("\n== Table 8: transfer frameworks — speedup, PE, APR ==");
    for &target in &targets {
        println!("\n-- target: {} --", target.name());
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .filter(|r| r.target == target.name())
            .map(|r| {
                vec![
                    r.framework.clone(),
                    r.speedup.map_or("x".to_string(), |s| format!("{s:.2}")),
                    pct(r.pe),
                    r.apr.to_string(),
                    format!("{:.0}", r.best_value),
                ]
            })
            .collect();
        print_table(&["Framework", "Speedup", "PE", "APR", "Best tx/s"], &table_rows);
    }

    // Averages across targets, as the paper's final row.
    println!("\n-- averages across targets --");
    let frameworks: Vec<String> = rows
        .iter()
        .map(|r| r.framework.clone())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let avg_rows: Vec<Vec<String>> = frameworks
        .iter()
        .map(|f| {
            let rs: Vec<&Row> = rows.iter().filter(|r| &r.framework == f).collect();
            let speedups: Vec<f64> = rs.iter().filter_map(|r| r.speedup).collect();
            let pe = dbtune_linalg::stats::mean(&rs.iter().map(|r| r.pe).collect::<Vec<_>>());
            let apr =
                dbtune_linalg::stats::mean(&rs.iter().map(|r| r.apr as f64).collect::<Vec<_>>());
            vec![
                f.clone(),
                if speedups.is_empty() {
                    "x".to_string()
                } else {
                    format!("{:.2}", dbtune_linalg::stats::mean(&speedups))
                },
                pct(pe),
                format!("{apr:.2}"),
            ]
        })
        .collect();
    print_table(&["Framework", "Avg speedup", "Avg PE", "Avg APR"], &avg_rows);

    print_exec_summary(&exec);
    save_json_with_exec("table8_transfer", &rows, &exec);
}
