// Driver binary: exempt from the unwrap ban (lint rule E1 and its clippy
// twin unwrap_used) — a panic here aborts one experiment run, not a
// library caller.
#![allow(clippy::unwrap_used)]
//! Renders the optimizer-quality flight recorder's diagnostics from a
//! JSONL trace journal taken with `diag=on`: one convergence /
//! calibration report per session, then the cross-optimizer ranking
//! table (best final incumbent first).
//!
//! Usage: `diag_report <journal.jsonl> [out=<report.md>]`
//!
//! The report is a pure function of the journal bytes (fixed-precision
//! formatting, deterministic grouping), so CI can archive it as a build
//! artifact and two archives differ only when the tuning results did.
//! Exit codes: 0 ok, 1 journal holds no diag records, 2 usage or I/O
//! error. See docs/observability.md ("Optimizer-quality diagnostics")
//! for how to read the output.

use dbtune_bench::artifact::load_journal;
use dbtune_bench::ExpArgs;
use dbtune_diag::{
    calibration, extract_records, group_sessions, render_ranking, render_session_report,
    summarize_session,
};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut positional = std::env::args().skip(1).filter(|a| !a.contains('='));
    let (Some(path), None) = (positional.next(), positional.next()) else {
        eprintln!("usage: diag_report <journal.jsonl> [out=<report.md>]");
        return ExitCode::from(2);
    };
    let args = ExpArgs::parse();
    let out_path = args.get_str("out", "");

    let journal = match load_journal(Path::new(&path)) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("diag_report: {e}");
            return ExitCode::from(2);
        }
    };
    let records = extract_records(journal.events.iter().map(|l| &l.event));
    if records.is_empty() {
        eprintln!(
            "diag_report: {path} holds no diag records — was the run taken with diag=on \
             and a trace journal?"
        );
        return ExitCode::from(1);
    }

    let mut out = String::new();
    out.push_str(&format!(
        "# optimizer-quality report — {} ({} diag records)\n\n",
        journal.source,
        records.len()
    ));
    let rows: Vec<_> = group_sessions(&records)
        .iter()
        .map(|(session, recs)| (summarize_session(session, recs), calibration(recs)))
        .collect();
    for (summary, cal) in &rows {
        out.push_str(&render_session_report(summary, cal.as_ref()));
        out.push('\n');
    }
    out.push_str("# ranking\n\n");
    out.push_str(&render_ranking(&rows));

    print!("{out}");
    if !out_path.is_empty() {
        if let Err(e) = std::fs::write(&out_path, &out) {
            eprintln!("diag_report: cannot write {out_path}: {e}");
            return ExitCode::from(2);
        }
        println!("\n[wrote {out_path}]");
    }
    ExitCode::SUCCESS
}
