// Driver binary: exempt from the unwrap ban (lint rule E1 and its clippy
// twin unwrap_used) — a panic here aborts one experiment run, not a
// library caller.
#![allow(clippy::unwrap_used)]
//! Validates a JSONL trace journal written via `DBTUNE_TRACE=path` or a
//! driver's `trace=path` flag, in two passes:
//!
//! 1. **Line level** — every line must parse as a known [`TraceEvent`],
//!    the first line must be a `meta` event carrying the supported
//!    schema version, and `seq` must be strictly increasing.
//! 2. **Structural** (`dbtune_trace::check_structure`) — the span
//!    stream must reconstruct into a consistent tree per thread (every
//!    close explained by a matched open: no orphan depths, no parent
//!    mismatches, no spans whose parent never closes, i.e. truncation),
//!    counters and histogram counts must be monotonically
//!    non-decreasing across flushes, and histogram quantiles must be
//!    ordered.
//!
//! Usage: `trace_validate <journal.jsonl>`. Exit codes: 0 valid,
//! 1 invalid journal (violations are printed with line numbers), 2
//! usage or I/O error. CI runs this against a fresh trace from a tiny
//! driver run; see `docs/observability.md` for the schema itself.

use dbtune_core::telemetry::{TraceEvent, SCHEMA_VERSION};
use dbtune_trace::JournalLine;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("usage: trace_validate <journal.jsonl>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_validate: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut errors = 0usize;
    let mut last_seq = 0u64;
    let mut lines = 0usize;
    let mut parsed: Vec<JournalLine> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            eprintln!("{path}:{lineno}: empty line");
            errors += 1;
            continue;
        }
        lines += 1;
        let event = match TraceEvent::parse_line(line) {
            Ok(ev) => ev,
            Err(e) => {
                eprintln!("{path}:{lineno}: {e}");
                errors += 1;
                continue;
            }
        };
        match &event {
            TraceEvent::Meta { version, source } => {
                if lineno != 1 {
                    eprintln!("{path}:{lineno}: meta event must be the first line");
                    errors += 1;
                }
                if *version != SCHEMA_VERSION {
                    eprintln!(
                        "{path}:{lineno}: schema version {version} (validator supports {SCHEMA_VERSION})"
                    );
                    errors += 1;
                }
                if source.is_empty() {
                    eprintln!("{path}:{lineno}: meta source is empty");
                    errors += 1;
                }
            }
            TraceEvent::Span { seq, .. }
            | TraceEvent::Counter { seq, .. }
            | TraceEvent::Gauge { seq, .. }
            | TraceEvent::Hist { seq, .. }
            | TraceEvent::Cell { seq, .. }
            | TraceEvent::Mem { seq, .. }
            | TraceEvent::Diag { seq, .. } => {
                if lineno == 1 {
                    eprintln!("{path}:{lineno}: first line must be a meta event");
                    errors += 1;
                }
                // seq is assigned under the writer lock, so within a
                // journal it must be strictly increasing.
                if *seq <= last_seq {
                    eprintln!(
                        "{path}:{lineno}: seq {seq} not greater than previous seq {last_seq}"
                    );
                    errors += 1;
                }
                last_seq = (*seq).max(last_seq);
            }
        }
        *counts.entry(event.kind()).or_insert(0) += 1;
        if !matches!(event, TraceEvent::Meta { .. }) {
            parsed.push(JournalLine { line: lineno, event });
        }
    }
    if lines == 0 {
        eprintln!("{path}: journal is empty");
        errors += 1;
    }

    // Cross-line structural invariants over whatever parsed (so a journal
    // with one bad line still gets its tree and counters checked).
    for violation in dbtune_trace::check_structure(&parsed) {
        if violation.line == 0 {
            eprintln!("{path}: end of journal: {}", violation.message);
        } else {
            eprintln!("{path}:{}: {}", violation.line, violation.message);
        }
        errors += 1;
    }

    if errors > 0 {
        eprintln!("{path}: INVALID — {errors} error(s) across {lines} line(s)");
        return ExitCode::from(1);
    }
    let summary: Vec<String> = counts.iter().map(|(k, v)| format!("{k}={v}")).collect();
    println!("{path}: OK — {lines} events ({})", summary.join(", "));
    ExitCode::SUCCESS
}
