// Driver binary: exempt from the unwrap ban (lint rule E1 and its clippy
// twin unwrap_used) — a panic here aborts one experiment run, not a
// library caller.
#![allow(clippy::unwrap_used)]
//! Figure 7 + Table 7 + the §6.4 headline number.
//!
//! All seven optimizers over small (top-5), medium (top-20), and large
//! (all 197) configuration spaces on JOB and SYSBENCH; reports the
//! best-performance-over-iteration series (Figure 7), the average rank of
//! each optimizer per space size (Table 7), and SMAC's average improvement
//! over the traditional optimizers vanilla BO and DDPG (paper: +21.17%).
//!
//! Arguments: `samples=6250 iters=120 seeds=2 workers= cache=on`
//! (paper: 6250/200/3). Sessions run on the parallel executor; the
//! shared cache deduplicates the LHS warm-up evaluations that all
//! optimizers of one scenario share.

use dbtune_bench::{
    full_pool, pct, print_exec_summary, print_table, run_tuning_grid, save_json_with_exec,
    top_k_knobs, ExpArgs, GridOpts, TuningCell,
};
use dbtune_core::importance::MeasureKind;
use dbtune_core::optimizer::OptimizerKind;
use dbtune_dbsim::{DbSimulator, Hardware, Workload};
use dbtune_linalg::stats::average_rank;
use serde::Serialize;

#[derive(Serialize)]
struct Run {
    workload: String,
    space: String,
    optimizer: String,
    improvement_trace: Vec<f64>,
    best_improvement: f64,
}

fn main() {
    let _trace_flush = dbtune_bench::flush_guard();
    let args = ExpArgs::parse();
    let samples = args.get_usize("samples", 6250);
    let iters = args.get_usize("iters", 120);
    let seeds = args.get_usize("seeds", 2);

    let opts = GridOpts::from_args("fig7_optimizers", &args, 700);

    let catalog = DbSimulator::new(Workload::Job, Hardware::B, 0).catalog().clone();
    let sizes: [(&str, usize); 3] = [("small", 5), ("medium", 20), ("large", 197)];

    // Grid: (workload × space × optimizer × seed), seed-major innermost so
    // each scenario's repeats are consecutive in the result vector.
    let mut cells: Vec<TuningCell> = Vec::new();
    let mut scenarios: Vec<(Workload, &str, OptimizerKind)> = Vec::new();
    for &wl in &[Workload::Job, Workload::Sysbench] {
        let pool = full_pool(wl, samples, 7);
        let ranked = top_k_knobs(MeasureKind::Shap, &catalog, &pool, 197, 11);
        for &(space_label, k) in &sizes {
            let selected = ranked[..k].to_vec();
            for &opt in &OptimizerKind::PAPER {
                scenarios.push((wl, space_label, opt));
                for s in 0..seeds {
                    cells.push(TuningCell {
                        workload: wl,
                        selected: selected.clone(),
                        opt_kind: opt,
                        iters,
                        seed: 700 + s as u64,
                    });
                }
            }
        }
    }
    let (results, exec) = run_tuning_grid(&cells, &opts);

    let mut runs: Vec<Run> = Vec::new();
    for ((wl, space_label, opt), chunk) in scenarios.iter().zip(results.chunks(seeds)) {
        let traces: Vec<Vec<f64>> = chunk.iter().map(|r| r.improvement_trace()).collect();
        let trace: Vec<f64> = (0..iters)
            .map(|i| {
                let vals: Vec<f64> = traces.iter().map(|t| t[i]).collect();
                dbtune_bench::median(&vals)
            })
            .collect();
        let best = *trace.last().expect("nonempty");
        eprintln!("[{} {} {}] best {}", wl.name(), space_label, opt.label(), pct(best));
        runs.push(Run {
            workload: wl.name().to_string(),
            space: space_label.to_string(),
            optimizer: opt.label().to_string(),
            improvement_trace: trace,
            best_improvement: best,
        });
    }

    // ---- Figure 7 checkpoint tables ----
    let checkpoints: Vec<usize> =
        [0.25, 0.5, 0.75, 1.0].iter().map(|f| ((iters as f64 * f) as usize).max(1) - 1).collect();
    for &wl in &[Workload::Job, Workload::Sysbench] {
        for &(space_label, _) in &sizes {
            println!(
                "\n== Figure 7 ({}, {} space): best improvement over iterations ==",
                wl.name(),
                space_label
            );
            let rows: Vec<Vec<String>> = runs
                .iter()
                .filter(|r| r.workload == wl.name() && r.space == space_label)
                .map(|r| {
                    let mut row = vec![r.optimizer.clone()];
                    for &c in &checkpoints {
                        row.push(pct(r.improvement_trace[c]));
                    }
                    row
                })
                .collect();
            let headers: Vec<String> = std::iter::once("Optimizer".to_string())
                .chain(checkpoints.iter().map(|c| format!("iter {}", c + 1)))
                .collect();
            let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
            print_table(&header_refs, &rows);
        }
    }

    // ---- Table 7: average rank per space size + overall ----
    println!("\n== Table 7: average ranking of optimizers (1 = best) ==");
    let mut all_scenarios: Vec<Vec<f64>> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut per_size_rank: Vec<Vec<f64>> = Vec::new();
    for &(space_label, _) in &sizes {
        let mut scenarios: Vec<Vec<f64>> = Vec::new();
        for &wl in &[Workload::Job, Workload::Sysbench] {
            let scores: Vec<f64> = OptimizerKind::PAPER
                .iter()
                .map(|o| {
                    runs.iter()
                        .find(|r| {
                            r.workload == wl.name()
                                && r.space == space_label
                                && r.optimizer == o.label()
                        })
                        .expect("run recorded")
                        .best_improvement
                })
                .collect();
            scenarios.push(scores.clone());
            all_scenarios.push(scores);
        }
        per_size_rank.push(average_rank(&scenarios, true));
    }
    let overall = average_rank(&all_scenarios, true);
    for (i, opt) in OptimizerKind::PAPER.iter().enumerate() {
        rows.push(vec![
            opt.label().to_string(),
            format!("{:.2}", per_size_rank[0][i]),
            format!("{:.2}", per_size_rank[1][i]),
            format!("{:.2}", per_size_rank[2][i]),
            format!("{:.2}", overall[i]),
        ]);
    }
    print_table(&["Optimizer", "Small", "Medium", "Large", "Overall"], &rows);

    // ---- §6.4 headline: SMAC vs vanilla BO / DDPG ----
    let mean_of = |label: &str| {
        let vals: Vec<f64> =
            runs.iter().filter(|r| r.optimizer == label).map(|r| r.best_improvement).collect();
        dbtune_linalg::stats::mean(&vals)
    };
    let smac = mean_of("SMAC");
    let trad = 0.5 * (mean_of("Vanilla BO") + mean_of("DDPG"));
    println!(
        "\nSMAC avg improvement {} vs traditional (vanilla BO/DDPG) {} -> SMAC advantage {} (paper: +21.17%)",
        pct(smac),
        pct(trad),
        pct(smac - trad)
    );

    print_exec_summary(&exec);
    save_json_with_exec("fig7_table7", &runs, &exec);
}
