//! Shared plumbing for the experiment drivers (one binary per paper table
//! or figure — see `src/bin/`) and the Criterion micro-benchmarks.
//!
//! Every driver accepts `key=value` command-line overrides (`iters=200`,
//! `seeds=3`, `samples=6250`, …). Defaults are scaled for a single-core
//! machine; `EXPERIMENTS.md` records both the defaults used and the
//! paper-scale settings.

use dbtune_core::importance::{ImportanceInput, MeasureKind};
use dbtune_core::optimizer::OptimizerKind;
use dbtune_core::sampling;
use dbtune_core::space::TuningSpace;
use dbtune_core::tuner::{orient, run_session, SessionConfig, SessionResult, SimObjective};
use dbtune_dbsim::{DbSimulator, Hardware, KnobCatalog, Workload, METRICS_DIM};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;

/// `key=value` command-line arguments with typed getters.
pub struct ExpArgs {
    map: HashMap<String, String>,
}

impl ExpArgs {
    /// Parses `std::env::args`.
    pub fn parse() -> Self {
        let mut map = HashMap::new();
        for arg in std::env::args().skip(1) {
            if let Some((k, v)) = arg.split_once('=') {
                map.insert(k.trim_start_matches('-').to_string(), v.to_string());
            }
        }
        Self { map }
    }

    /// Integer argument with default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.map
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("bad value for {key}: {v}")))
            .unwrap_or(default)
    }

    /// u64 argument with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.map
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("bad value for {key}: {v}")))
            .unwrap_or(default)
    }
}

/// Directory where drivers persist JSON results (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Persists a serializable result under `results/<name>.json`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let file = std::fs::File::create(&path).expect("create result file");
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), value).expect("serialize result");
    println!("[saved {}]", path.display());
}

/// An LHS observation pool over the full 197-knob catalog for one
/// workload: configurations, maximize-oriented scores, and metric vectors.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Pool {
    /// Workload name (for cache-file identification).
    pub workload: String,
    /// Full-catalog raw configurations.
    pub x: Vec<Vec<f64>>,
    /// Maximize-oriented scores (failures mapped to worst seen).
    pub y: Vec<f64>,
    /// Internal-metric vectors per observation.
    pub metrics: Vec<Vec<f64>>,
    /// The hardware-adjusted default configuration.
    pub default_cfg: Vec<f64>,
}

/// Collects (or loads from `results/`) an LHS pool of `n` observations of
/// `workload` on instance B — the §5.1 sample-collection step.
pub fn full_pool(workload: Workload, n: usize, seed: u64) -> Pool {
    let cache = results_dir().join(format!(
        "pool_{}_{}_{}.json",
        workload.name().replace('-', ""),
        n,
        seed
    ));
    if let Ok(file) = std::fs::File::open(&cache) {
        if let Ok(pool) = serde_json::from_reader::<_, Pool>(std::io::BufReader::new(file)) {
            if pool.x.len() == n {
                println!("[pool cache hit: {}]", cache.display());
                return pool;
            }
        }
    }

    let mut sim = DbSimulator::new(workload, Hardware::B, seed);
    let catalog = sim.catalog().clone();
    let default_cfg = catalog.default_config(Hardware::B);
    let all: Vec<usize> = (0..catalog.len()).collect();
    let space = TuningSpace::new(&catalog, all, default_cfg.clone());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9001);
    let obj = SimObjective::objective(&sim);

    let mut pool = Pool {
        workload: workload.name().to_string(),
        x: Vec::with_capacity(n),
        y: Vec::with_capacity(n),
        metrics: Vec::with_capacity(n),
        default_cfg,
    };
    let mut worst = f64::INFINITY;
    for cfg in sampling::lhs(space.space(), n, &mut rng) {
        let res = SimObjective::evaluate(&mut sim, &cfg);
        let score = if res.failed {
            if worst.is_finite() {
                worst
            } else {
                orient(obj, sim.reference_value(space.base())) - 1.0
            }
        } else {
            orient(obj, res.value)
        };
        worst = worst.min(score);
        pool.x.push(cfg);
        pool.y.push(score);
        pool.metrics.push(res.metrics);
    }

    if let Ok(file) = std::fs::File::create(&cache) {
        let _ = serde_json::to_writer(std::io::BufWriter::new(file), &pool);
        println!("[pool cached: {}]", cache.display());
    }
    pool
}

/// Runs one importance measurement over a pool, returning per-knob scores.
pub fn importance_scores(
    kind: MeasureKind,
    catalog: &KnobCatalog,
    pool: &Pool,
    seed: u64,
) -> Vec<f64> {
    let measure = kind.build();
    measure.scores(&ImportanceInput {
        specs: catalog.specs(),
        default: &pool.default_cfg,
        x: &pool.x,
        y: &pool.y,
        seed,
    })
}

/// Top-`k` knob indices under a measurement.
pub fn top_k_knobs(
    kind: MeasureKind,
    catalog: &KnobCatalog,
    pool: &Pool,
    k: usize,
    seed: u64,
) -> Vec<usize> {
    dbtune_core::importance::top_k(&importance_scores(kind, catalog, pool, seed), k)
}

/// Runs a full tuning session of `opt_kind` over the selected knobs of
/// `workload` on instance B.
pub fn run_tuning(
    workload: Workload,
    selected: Vec<usize>,
    opt_kind: OptimizerKind,
    iters: usize,
    seed: u64,
) -> SessionResult {
    let mut sim = DbSimulator::new(workload, Hardware::B, seed);
    let catalog = sim.catalog().clone();
    let space = TuningSpace::with_default_base(&catalog, selected, Hardware::B);
    let mut opt = opt_kind.build(space.space(), METRICS_DIM, seed);
    run_session(
        &mut sim,
        &space,
        &mut opt,
        &SessionConfig { iterations: iters, lhs_init: 10, seed, ..Default::default() },
    )
}

/// Median of a slice (convenience re-export for drivers).
pub fn median(xs: &[f64]) -> f64 {
    dbtune_linalg::stats::median(xs)
}

/// Renders a plain-text table with padded columns.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}", w = w))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    println!(
        "|{}|",
        widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|")
    );
    for row in rows {
        line(row.clone());
    }
}

/// Formats a fraction as a signed percentage string.
pub fn pct(v: f64) -> String {
    format!("{:+.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_signed_percent() {
        assert_eq!(pct(0.3802), "+38.02%");
        assert_eq!(pct(-0.015), "-1.50%");
    }

    #[test]
    fn args_typed_getters() {
        let mut map = HashMap::new();
        map.insert("iters".to_string(), "42".to_string());
        let args = ExpArgs { map };
        assert_eq!(args.get_usize("iters", 7), 42);
        assert_eq!(args.get_usize("seeds", 7), 7);
        assert_eq!(args.get_u64("seed", 3), 3);
    }
}
