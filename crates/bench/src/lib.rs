//! Shared plumbing for the experiment drivers (one binary per paper table
//! or figure — see `src/bin/`) and the Criterion micro-benchmarks.
//!
//! Every driver accepts `key=value` command-line overrides (`iters=200`,
//! `seeds=3`, `samples=6250`, …). Defaults are scaled for a single-core
//! machine; `EXPERIMENTS.md` records both the defaults used and the
//! paper-scale settings.

pub mod artifact;
pub mod quality;

use dbtune_core::exec::{
    cell_seed, resolve_workers, run_grid, CacheStats, CachedObjective, EvalCache, RetryPolicy,
};
use dbtune_core::importance::{ImportanceInput, MeasureKind};
use dbtune_core::optimizer::OptimizerKind;
use dbtune_core::sampling;
use dbtune_core::space::TuningSpace;
use dbtune_core::telemetry::{self, TraceEvent};
use dbtune_core::tuner::{orient, run_session, SessionConfig, SessionResult, SimObjective};
use dbtune_dbsim::{DbSimulator, FaultPlan, Hardware, KnobCatalog, Workload, METRICS_DIM};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// RAII guard flushing the global trace journal when dropped. Every
/// driver `main` takes one as its first statement:
///
/// ```no_run
/// fn main() {
///     let _trace_flush = dbtune_bench::flush_guard();
///     // ...
/// }
/// ```
///
/// The journal writes through a `BufWriter`, so without a final flush a
/// driver that exits early — a panic mid-grid, a `return` on a bad
/// argument — leaves its last buffered lines unwritten, and a truncated
/// journal can look complete enough to pass naive checks. The guard
/// runs on ordinary returns *and* unwinding panics, making truncation a
/// structural violation `trace_validate` can actually catch (an
/// unclosed parent span) rather than a silent artifact of buffering.
/// A no-op when tracing is disabled.
// The doctest's `fn main` is the point of the example (the guard must be
// the first statement of a driver's main), not boilerplate.
#[allow(clippy::needless_doctest_main)]
#[must_use = "the guard flushes on drop; binding it to _ drops it immediately"]
pub struct TraceFlushGuard(());

impl Drop for TraceFlushGuard {
    fn drop(&mut self) {
        telemetry::global().journal.flush();
    }
}

/// Creates the [`TraceFlushGuard`] for a driver's `main`.
pub fn flush_guard() -> TraceFlushGuard {
    TraceFlushGuard(())
}

/// `key=value` command-line arguments with typed getters.
pub struct ExpArgs {
    map: HashMap<String, String>,
}

impl ExpArgs {
    /// Parses `std::env::args`.
    pub fn parse() -> Self {
        let mut map = HashMap::new();
        for arg in std::env::args().skip(1) {
            if let Some((k, v)) = arg.split_once('=') {
                map.insert(k.trim_start_matches('-').to_string(), v.to_string());
            }
        }
        Self { map }
    }

    /// Integer argument with default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.map
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("bad value for {key}: {v}")))
            .unwrap_or(default)
    }

    /// u64 argument with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.map
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("bad value for {key}: {v}")))
            .unwrap_or(default)
    }

    /// String argument with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.map.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    /// Optional integer argument (no default — e.g. `workers=`, which
    /// falls back to the executor's own resolution chain when absent).
    pub fn opt_usize(&self, key: &str) -> Option<usize> {
        self.map.get(key).map(|v| v.parse().unwrap_or_else(|_| panic!("bad value for {key}: {v}")))
    }
}

// ---------------------------------------------------------------------------
// Parallel grid execution (see dbtune_core::exec and docs/execution.md)
// ---------------------------------------------------------------------------

/// Execution settings shared by every driver: worker-pool size
/// (`workers=N` flag > `DBTUNE_WORKERS` env > detected, capped at 8),
/// whether the shared evaluation cache is on (`cache=on|off`, default
/// on), and the grid-level noise seed from which every evaluation's
/// noise token is mixed.
#[derive(Clone, Copy, Debug)]
pub struct GridOpts {
    /// Worker threads for [`run_grid`].
    pub workers: usize,
    /// Share an [`EvalCache`] across the grid's sessions.
    pub cache: bool,
    /// Grid-level noise seed (fixed per driver so cached results mean
    /// the same thing to every session).
    pub noise_seed: u64,
    /// Transient-fault schedule (`faults=` flag; inactive by default, so
    /// every existing artifact stays byte-identical). Each grid cell gets
    /// the plan reseeded by its index.
    pub faults: FaultPlan,
    /// Retry schedule for transient faults (`retries=` flag).
    pub retry: RetryPolicy,
}

impl GridOpts {
    /// Parses `workers=` / `cache=` / `trace=` / `diag=` / `mem=` /
    /// `faults=` / `retries=` from the driver's arguments. `driver`
    /// names the binary; it becomes the journal's `source` when
    /// `trace=<path>` starts one (the `DBTUNE_TRACE` environment
    /// variable is handled by the telemetry global itself). `diag=on`
    /// latches the optimizer-quality recorder (see
    /// docs/observability.md) — its records reach a file only when the
    /// journal is also on. `mem=on` latches the memory profiler the
    /// same way: span closes start carrying `mem` events (journal on)
    /// and the `mem.*` metrics are published at report time; accounting
    /// is read-only, so results stay byte-identical either way. Fault
    /// injection defaults off; see `docs/robustness.md` for the flag
    /// grammar.
    pub fn from_args(driver: &str, args: &ExpArgs, noise_seed: u64) -> Self {
        let cache = match args.get_str("cache", "on").as_str() {
            "on" => true,
            "off" => false,
            other => panic!("bad value for cache: {other} (expected on|off)"),
        };
        let trace = args.get_str("trace", "");
        if !trace.is_empty() {
            telemetry::global()
                .enable_journal(std::path::Path::new(&trace), driver)
                .unwrap_or_else(|e| panic!("cannot open trace journal {trace}: {e}"));
        }
        match args.get_str("diag", "off").as_str() {
            "on" => telemetry::global().enable_diag(),
            "off" => {}
            other => panic!("bad value for diag: {other} (expected on|off)"),
        }
        match args.get_str("mem", "off").as_str() {
            "on" => telemetry::global().enable_memprof(),
            "off" => {}
            other => panic!("bad value for mem: {other} (expected on|off)"),
        }
        let faults = FaultPlan::parse(&args.get_str("faults", "off"))
            .unwrap_or_else(|e| panic!("bad value for faults: {e}"));
        let retry = RetryPolicy::parse(&args.get_str("retries", ""))
            .unwrap_or_else(|e| panic!("bad value for retries: {e}"));
        Self {
            workers: resolve_workers(args.opt_usize("workers")),
            cache,
            noise_seed,
            faults,
            retry,
        }
    }

    /// A fresh shared cache, or `None` when disabled.
    pub fn make_cache(&self) -> Option<Arc<EvalCache>> {
        if self.cache {
            Some(EvalCache::shared())
        } else {
            None
        }
    }

    /// Final execution report for the driver's JSON output. Also publishes
    /// the cache counters into the global metrics registry, so the
    /// `"telemetry"` block, the journal flush, and the console summary all
    /// read the same numbers.
    pub fn report(&self, cache: Option<&Arc<EvalCache>>) -> ExecReport {
        let stats = cache.map(|c| c.stats()).unwrap_or_default();
        let transient_skips = cache.map(|c| c.transient_skips()).unwrap_or(0);
        let metrics = &telemetry::global().metrics;
        metrics.counter("exec.cache.hits").add(stats.hits);
        metrics.counter("exec.cache.misses").add(stats.misses);
        metrics.gauge("exec.cache.entries").set(stats.entries as i64);
        // Published lazily, like `sim.faults.*`: the counter can only be
        // nonzero under fault injection, and registering it at zero
        // would add a key to every fault-free telemetry block (committed
        // artifacts must stay byte-identical).
        if transient_skips > 0 {
            metrics.counter("exec.cache.transient_skips").add(transient_skips);
        }
        // Memory metrics follow the same lazy rule: registered only when
        // the profiler is latched (`mem=on`), so unprofiled artifacts
        // keep their exact telemetry key set. All of these live in the
        // `"telemetry"` block only — like wall clock, never `"results"`.
        if telemetry::global().memprof_enabled() {
            let mem = dbtune_obs::memprof::global_stats();
            metrics.gauge("mem.peak_bytes").set(mem.peak_bytes as i64);
            metrics.gauge("mem.live_bytes").set(mem.live_bytes as i64);
            metrics.counter("mem.alloc_count").add(mem.alloc_count);
            metrics.counter("mem.alloc_bytes").add(mem.alloc_bytes);
            let evals = metrics.counter("sim.evals").get();
            if let Some(per_eval) = mem.alloc_count.checked_div(evals) {
                metrics.gauge("mem.allocs_per_eval").set(per_eval as i64);
            }
            for (span, agg) in dbtune_obs::memprof::table_snapshot() {
                match span {
                    "surrogate_fit" => metrics.counter("mem.fit.alloc_bytes").add(agg.self_bytes),
                    "acquisition" => metrics.counter("mem.acq.alloc_bytes").add(agg.self_bytes),
                    _ => {}
                }
            }
        }
        ExecReport {
            workers: self.workers,
            cache_enabled: self.cache,
            noise_seed: self.noise_seed,
            cache: stats,
            transient_skips,
            faults: self.faults,
            retry: self.retry,
        }
    }
}

/// How a grid was executed — embedded under `"exec"` in every driver's
/// JSON output. The cache counters are deterministic (see
/// [`CacheStats`]). `workers` is deliberately NOT serialized: it is the
/// one field that would differ between otherwise byte-identical runs,
/// and keeping it out of the artifact makes `workers=1` and `workers=8`
/// outputs literally `cmp`-equal (the count still goes to stdout).
#[derive(Clone, Copy, Debug)]
pub struct ExecReport {
    /// Worker threads used (stdout only, see above).
    pub workers: usize,
    /// Whether the shared evaluation cache was on.
    pub cache_enabled: bool,
    /// Grid-level noise seed.
    pub noise_seed: u64,
    /// Cache counters (all zero when the cache was off).
    pub cache: CacheStats,
    /// Transient outcomes the cache refused to store (zero unless fault
    /// injection was on; serialized only then — see
    /// [`EvalCache::transient_skips`]).
    pub transient_skips: u64,
    /// The fault schedule the grid ran under (inactive by default).
    pub faults: FaultPlan,
    /// The retry policy applied to transient faults.
    pub retry: RetryPolicy,
}

impl Serialize for ExecReport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("cache_enabled".to_string(), self.cache_enabled.to_value()),
            ("noise_seed".to_string(), self.noise_seed.to_value()),
            ("cache".to_string(), self.cache.to_value()),
        ];
        // Chaos settings appear only when injection is on: faults-off
        // artifacts must stay byte-identical to the pre-fault baseline.
        if self.faults.is_active() {
            fields.push(("cache_transient_skips".to_string(), self.transient_skips.to_value()));
            fields.push((
                "faults".to_string(),
                serde::Value::Object(vec![
                    ("seed".to_string(), self.faults.seed.to_value()),
                    ("timeout_rate".to_string(), self.faults.timeout_rate.to_value()),
                    ("crash_rate".to_string(), self.faults.crash_rate.to_value()),
                    ("noise_rate".to_string(), self.faults.noise_rate.to_value()),
                    ("stall_rate".to_string(), self.faults.stall_rate.to_value()),
                    ("timeout_secs".to_string(), self.faults.timeout_secs.to_value()),
                    ("stall_secs".to_string(), self.faults.stall_secs.to_value()),
                ]),
            ));
            fields.push((
                "retry".to_string(),
                serde::Value::Object(vec![
                    ("max_attempts".to_string(), self.retry.max_attempts.to_value()),
                    ("backoff_secs".to_string(), self.retry.backoff_secs.to_value()),
                    ("multiplier".to_string(), self.retry.multiplier.to_value()),
                ]),
            ));
        }
        serde::Value::Object(fields)
    }
}

/// One cell of a standard tuning grid: a full session of `opt_kind` over
/// `selected` knobs of `workload` on instance B.
#[derive(Clone, Debug)]
pub struct TuningCell {
    /// Workload under tuning.
    pub workload: Workload,
    /// Catalog indices of the tuning space.
    pub selected: Vec<usize>,
    /// Optimizer driving the session.
    pub opt_kind: OptimizerKind,
    /// Session iterations.
    pub iters: usize,
    /// Session seed (LHS init + optimizer).
    pub seed: u64,
}

/// Runs one tuning session against a cache-wrapped simulator. Pure given
/// the cell and `noise_seed` — the shared cache only memoizes, so results
/// are identical with the cache on, off, or shared (see
/// [`CachedObjective`]).
pub fn run_cached_session(
    cell: &TuningCell,
    cache: Option<Arc<EvalCache>>,
    noise_seed: u64,
) -> SessionResult {
    run_cached_session_with_stats(cell, cache, noise_seed).0
}

/// [`run_cached_session`] plus the session's own cache hit/miss counts
/// (per-cell, unlike the grid-wide [`EvalCache::stats`]) — the numbers the
/// journal's per-cell events report.
pub fn run_cached_session_with_stats(
    cell: &TuningCell,
    cache: Option<Arc<EvalCache>>,
    noise_seed: u64,
) -> (SessionResult, u64, u64) {
    run_faulty_session_with_stats(
        cell,
        cache,
        noise_seed,
        FaultPlan::disabled(),
        RetryPolicy::none(),
    )
}

/// [`run_cached_session_with_stats`] under a fault schedule: the cell's
/// simulator is wrapped with `plan`/`retry`, so transient faults strike,
/// are retried with simulated backoff, and exhausted evaluations surface
/// as failures to the session's [`FailurePolicy`]. With `plan` inactive
/// this is *exactly* the plain path (see `CachedObjective::with_faults`).
pub fn run_faulty_session_with_stats(
    cell: &TuningCell,
    cache: Option<Arc<EvalCache>>,
    noise_seed: u64,
    plan: FaultPlan,
    retry: RetryPolicy,
) -> (SessionResult, u64, u64) {
    let sim = DbSimulator::new(cell.workload, Hardware::B, cell.seed);
    let catalog = sim.catalog().clone();
    let space = TuningSpace::with_default_base(&catalog, cell.selected.clone(), Hardware::B);
    let mut opt = cell.opt_kind.build(space.space(), METRICS_DIM, cell.seed);
    let mut obj = CachedObjective::with_faults(sim, cache, noise_seed, plan, retry);
    // Label diag records so one journal distinguishes grid cells; the
    // label is built only when the recorder is on (it never influences
    // tuning either way).
    let diag_label = telemetry::global()
        .diag_enabled()
        .then(|| diag_session_label(cell.opt_kind, cell.workload, cell.selected.len(), cell.seed));
    let result = run_session(
        &mut obj,
        &space,
        &mut opt,
        &SessionConfig {
            iterations: cell.iters,
            lhs_init: 10,
            seed: cell.seed,
            diag_label,
            ..Default::default()
        },
    );
    (result, obj.n_hits() as u64, obj.n_misses() as u64)
}

/// The diag session label a grid cell's records carry: optimizer slug,
/// lowercased workload name, knob count, and seed (`smac/job/k12/s42`).
/// One definition so journal producers and `BENCH_quality.json`
/// consumers agree. The knob count matters: drivers like fig5/fig7
/// sweep space sizes with everything else fixed, and two sessions that
/// fold into one label would merge into a nonsense summary.
pub fn diag_session_label(
    opt_kind: OptimizerKind,
    workload: Workload,
    knobs: usize,
    seed: u64,
) -> String {
    format!("{}/{}/k{knobs}/s{seed}", opt_kind.slug(), workload.name().to_lowercase())
}

/// The per-cell fault schedule: the grid plan reseeded by the cell's
/// index, so every cell draws an unrelated fault sequence while the grid
/// as a whole stays replayable from one seed (and independent of worker
/// count — the index, not the thread, picks the schedule).
pub fn cell_fault_plan(grid: &FaultPlan, index: usize) -> FaultPlan {
    if grid.is_active() {
        grid.reseeded(cell_seed(grid.seed, index))
    } else {
        *grid
    }
}

/// Runs a grid of tuning sessions on the worker pool with a shared cache,
/// returning results in grid order plus the execution report. When the
/// trace journal is on, each completed cell emits a `cell` event with its
/// grid index, per-session cache hits/misses, duration, and thread.
pub fn run_tuning_grid(cells: &[TuningCell], opts: &GridOpts) -> (Vec<SessionResult>, ExecReport) {
    let cache = opts.make_cache();
    let tele = telemetry::global();
    let results = run_grid(cells, opts.workers, |index, cell| {
        let t0 = std::time::Instant::now(); // lint: allow(D2) journal cell-event duration — trace telemetry only
        let (result, hits, misses) = run_faulty_session_with_stats(
            cell,
            cache.clone(),
            opts.noise_seed,
            cell_fault_plan(&opts.faults, index),
            opts.retry,
        );
        if tele.journal.is_enabled() {
            tele.journal.emit(TraceEvent::Cell {
                index: index as u64,
                cache_hits: hits,
                cache_misses: misses,
                dur_nanos: t0.elapsed().as_nanos() as u64,
                thread: telemetry::thread_ordinal(),
                seq: 0,
            });
        }
        result
    });
    (results, opts.report(cache.as_ref()))
}

/// The uniform end-of-run console summary, printed by every driver in
/// place of ad-hoc `[exec]` lines. Cache counters come from the execution
/// report (deterministic per grid); the simulator counters come from the
/// same global registry the `"telemetry"` JSON block snapshots.
pub fn print_exec_summary(exec: &ExecReport) {
    let metrics = &telemetry::global().metrics;
    println!(
        "\n[exec] workers={} cache hits={} misses={} entries={} | sim evals={} crashes={}",
        exec.workers,
        exec.cache.hits,
        exec.cache.misses,
        exec.cache.entries,
        metrics.counter("sim.evals").get(),
        metrics.counter("sim.crashes").get(),
    );
    if telemetry::global().memprof_enabled() {
        let mem = dbtune_obs::memprof::global_stats();
        println!(
            "[mem] peak={} live={} allocs={} alloc bytes={}",
            mem.peak_bytes, mem.live_bytes, mem.alloc_count, mem.alloc_bytes,
        );
    }
    if exec.faults.is_active() {
        println!(
            "[chaos] fault seed={} timeouts={} spurious crashes={} noisy={} stalls={} | retries={} exhausted={} panics contained={} cache skips={}",
            exec.faults.seed,
            metrics.counter("sim.faults.timeout").get(),
            metrics.counter("sim.faults.crash").get(),
            metrics.counter("sim.faults.noise").get(),
            metrics.counter("sim.faults.stall").get(),
            metrics.counter("exec.retries").get(),
            metrics.counter("exec.retry_exhausted").get(),
            metrics.counter("exec.panics_contained").get(),
            exec.transient_skips,
        );
    }
}

/// Directory where drivers persist JSON results (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("cannot create results directory {}: {e}", dir.display()));
    dir
}

/// Persists a serializable result under `results/<name>.json`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let file = std::fs::File::create(&path)
        .unwrap_or_else(|e| panic!("cannot create {} for driver '{name}': {e}", path.display()));
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), value)
        .unwrap_or_else(|e| panic!("cannot write '{name}' results to {}: {e}", path.display()));
    println!("[saved {}]", path.display());
}

/// Persists `{"results": ..., "exec": ..., "telemetry": ...}` — the
/// uniform output shape of every driver, so downstream tooling (and the
/// smoke test) can rely on those top-level keys. Only `"telemetry"`
/// contains wall-clock numbers; `"results"` and `"exec"` are byte-
/// identical run to run, traced or not (see docs/observability.md).
pub fn save_json_with_exec<T: Serialize>(name: &str, results: &T, exec: &ExecReport) {
    save_json_with_telemetry(name, results, exec, None)
}

/// [`save_json_with_exec`] with an extra driver-specific value appended
/// to the `"telemetry"` block under `"driver"` (e.g. fig9's per-phase
/// overhead series). Flushes the metrics registry to the journal first,
/// so a trace ends with one `counter`/`gauge`/`hist` event per
/// instrument.
pub fn save_json_with_telemetry<T: Serialize>(
    name: &str,
    results: &T,
    exec: &ExecReport,
    driver_telemetry: Option<serde::Value>,
) {
    telemetry::global().flush_metrics();
    let mut tele_value = telemetry::global_report_value();
    if let Some(extra) = driver_telemetry {
        if let serde::Value::Object(fields) = &mut tele_value {
            fields.push(("driver".to_string(), extra));
        }
    }
    let wrapped = serde::Value::Object(vec![
        ("results".to_string(), results.to_value()),
        ("exec".to_string(), exec.to_value()),
        ("telemetry".to_string(), tele_value),
    ]);
    save_json(name, &wrapped);
}

/// An LHS observation pool over the full 197-knob catalog for one
/// workload: configurations, maximize-oriented scores, and metric vectors.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Pool {
    /// Workload name (for cache-file identification).
    pub workload: String,
    /// Full-catalog raw configurations.
    pub x: Vec<Vec<f64>>,
    /// Maximize-oriented scores (failures mapped to worst seen).
    pub y: Vec<f64>,
    /// Internal-metric vectors per observation.
    pub metrics: Vec<Vec<f64>>,
    /// The hardware-adjusted default configuration.
    pub default_cfg: Vec<f64>,
}

/// Collects (or loads from `results/`) an LHS pool of `n` observations of
/// `workload` on instance B — the §5.1 sample-collection step.
pub fn full_pool(workload: Workload, n: usize, seed: u64) -> Pool {
    let cache = results_dir().join(format!(
        "pool_{}_{}_{}.json",
        workload.name().replace('-', ""),
        n,
        seed
    ));
    if let Ok(file) = std::fs::File::open(&cache) {
        if let Ok(pool) = serde_json::from_reader::<_, Pool>(std::io::BufReader::new(file)) {
            if pool.x.len() == n {
                println!("[pool cache hit: {}]", cache.display());
                return pool;
            }
        }
    }

    let mut sim = DbSimulator::new(workload, Hardware::B, seed);
    let catalog = sim.catalog().clone();
    let default_cfg = catalog.default_config(Hardware::B);
    let all: Vec<usize> = (0..catalog.len()).collect();
    let space = TuningSpace::new(&catalog, all, default_cfg.clone());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9001);
    let obj = SimObjective::objective(&sim);

    let mut pool = Pool {
        workload: workload.name().to_string(),
        x: Vec::with_capacity(n),
        y: Vec::with_capacity(n),
        metrics: Vec::with_capacity(n),
        default_cfg,
    };
    let mut worst = f64::INFINITY;
    for cfg in sampling::lhs(space.space(), n, &mut rng) {
        let res = SimObjective::evaluate(&mut sim, &cfg);
        let score = if res.failed {
            if worst.is_finite() {
                worst
            } else {
                orient(obj, sim.reference_value(space.base())) - 1.0
            }
        } else {
            orient(obj, res.value)
        };
        worst = worst.min(score);
        pool.x.push(cfg);
        pool.y.push(score);
        pool.metrics.push(res.metrics);
    }

    if let Ok(file) = std::fs::File::create(&cache) {
        let _ = serde_json::to_writer(std::io::BufWriter::new(file), &pool);
        println!("[pool cached: {}]", cache.display());
    }
    pool
}

/// Runs one importance measurement over a pool, returning per-knob scores.
pub fn importance_scores(
    kind: MeasureKind,
    catalog: &KnobCatalog,
    pool: &Pool,
    seed: u64,
) -> Vec<f64> {
    let measure = kind.build();
    measure.scores(&ImportanceInput {
        specs: catalog.specs(),
        default: &pool.default_cfg,
        x: &pool.x,
        y: &pool.y,
        seed,
    })
}

/// Top-`k` knob indices under a measurement.
pub fn top_k_knobs(
    kind: MeasureKind,
    catalog: &KnobCatalog,
    pool: &Pool,
    k: usize,
    seed: u64,
) -> Vec<usize> {
    dbtune_core::importance::top_k(&importance_scores(kind, catalog, pool, seed), k)
}

/// Runs one full tuning session of `opt_kind` over the selected knobs of
/// `workload` on instance B — the single-cell convenience form of
/// [`run_tuning_grid`], sharing its deterministic noise scheme (noise
/// seed = session seed, no cache).
pub fn run_tuning(
    workload: Workload,
    selected: Vec<usize>,
    opt_kind: OptimizerKind,
    iters: usize,
    seed: u64,
) -> SessionResult {
    let cell = TuningCell { workload, selected, opt_kind, iters, seed };
    run_cached_session(&cell, None, seed)
}

/// Median of a slice (convenience re-export for drivers).
pub fn median(xs: &[f64]) -> f64 {
    dbtune_linalg::stats::median(xs)
}

/// Renders a plain-text table with padded columns.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> =
            cells.iter().zip(&widths).map(|(c, w)| format!("{c:<w$}", w = w)).collect();
        println!("| {} |", padded.join(" | "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    println!("|{}|", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|"));
    for row in rows {
        line(row.clone());
    }
}

/// Formats a fraction as a signed percentage string.
pub fn pct(v: f64) -> String {
    format!("{:+.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_signed_percent() {
        assert_eq!(pct(0.3802), "+38.02%");
        assert_eq!(pct(-0.015), "-1.50%");
    }

    #[test]
    fn args_typed_getters() {
        let mut map = HashMap::new();
        map.insert("iters".to_string(), "42".to_string());
        let args = ExpArgs { map };
        assert_eq!(args.get_usize("iters", 7), 42);
        assert_eq!(args.get_usize("seeds", 7), 7);
        assert_eq!(args.get_u64("seed", 3), 3);
    }
}
