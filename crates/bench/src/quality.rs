//! Shared definition of the optimizer-quality baseline: the fixed
//! optimizer × workload matrix the `quality_baseline` driver runs, and
//! the pure journal → `"results"` fold both that driver and the
//! `quality_determinism` suite use.
//!
//! The quality artifact (`BENCH_quality.json`) is the regret-curve
//! sibling of `BENCH_perf.json`: where the perf baseline pins *how
//! fast* the matrix runs, the quality baseline pins *how well* each
//! optimizer converges — final incumbent, simple and cumulative regret
//! against the workload's estimated optimum, best-so-far checkpoints,
//! and (for model-based optimizers) surrogate calibration. Everything
//! in the `"results"` block is a pure function of the diag records in
//! the journal, which are themselves deterministic, so the block is
//! byte-identical across repeats, worker counts, and machines.

use crate::TuningCell;
use dbtune_core::optimizer::OptimizerKind;
use dbtune_dbsim::Workload;
use dbtune_diag::{calibration, extract_records, group_sessions, summarize_session, Calibration};
use dbtune_trace::JournalData;
use serde::{Number, Value};

/// The fixed quality matrix: every Table 3 optimizer on one
/// latency-oriented workload (JOB) and one throughput-oriented workload
/// (Sysbench), so the ranking table exercises both score orientations.
/// Changing it invalidates the committed `BENCH_quality.json` — bump
/// with care and regenerate.
pub const MATRIX: [(Workload, OptimizerKind); 14] = [
    (Workload::Job, OptimizerKind::VanillaBo),
    (Workload::Job, OptimizerKind::MixedKernelBo),
    (Workload::Job, OptimizerKind::Smac),
    (Workload::Job, OptimizerKind::Tpe),
    (Workload::Job, OptimizerKind::Turbo),
    (Workload::Job, OptimizerKind::Ddpg),
    (Workload::Job, OptimizerKind::Ga),
    (Workload::Sysbench, OptimizerKind::VanillaBo),
    (Workload::Sysbench, OptimizerKind::MixedKernelBo),
    (Workload::Sysbench, OptimizerKind::Smac),
    (Workload::Sysbench, OptimizerKind::Tpe),
    (Workload::Sysbench, OptimizerKind::Turbo),
    (Workload::Sysbench, OptimizerKind::Ddpg),
    (Workload::Sysbench, OptimizerKind::Ga),
];

/// Knob count per cell: the first 12 catalog indices, fixed (no
/// importance ranking — the baseline must not depend on a pool file).
pub const KNOBS: usize = 12;

/// Session seed shared by every cell (mirrors `perf_baseline`).
pub const SEED: u64 = 42;

/// Default iterations per session — small enough for CI, long enough
/// that model-based optimizers leave their LHS phase well behind.
pub const DEFAULT_ITERS: usize = 30;

/// The diag session label `run_faulty_session_with_stats` assigns to a
/// matrix cell.
pub fn session_label(workload: Workload, opt_kind: OptimizerKind) -> String {
    crate::diag_session_label(opt_kind, workload, KNOBS, SEED)
}

/// The matrix as grid cells.
pub fn quality_cells(iters: usize) -> Vec<TuningCell> {
    MATRIX
        .iter()
        .map(|&(workload, opt_kind)| TuningCell {
            workload,
            selected: (0..KNOBS).collect(),
            opt_kind,
            iters,
            seed: SEED,
        })
        .collect()
}

fn uint(v: u64) -> Value {
    Value::Number(Number::PosInt(v))
}

/// Floats enter the artifact as-is; NaN (an empty calibration fraction)
/// has no JSON spelling and becomes `null`.
fn float_or_null(v: f64) -> Value {
    if v.is_nan() {
        Value::Null
    } else {
        Value::Number(Number::Float(v))
    }
}

fn opt_float(v: Option<f64>) -> Value {
    v.map_or(Value::Null, float_or_null)
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn calibration_value(cal: &Calibration) -> Value {
    obj(vec![
        ("n_scored", uint(cal.n_scored)),
        ("coverage_1s", float_or_null(cal.coverage_1s)),
        ("coverage_2s", float_or_null(cal.coverage_2s)),
        ("mean_nlpd", float_or_null(cal.mean_nlpd)),
        ("mean_abs_z", float_or_null(cal.mean_abs_z)),
        ("exploration_share", float_or_null(cal.exploration_share)),
        ("n_classified", uint(cal.n_classified)),
    ])
}

/// Folds a quality-matrix journal into the deterministic `"results"`
/// block of `BENCH_quality.json`: one summary object per matrix cell,
/// in fixed `MATRIX` order (journal order depends on worker scheduling;
/// the artifact must not). Errors when a cell's session is missing —
/// the journal was not taken with `diag=on`, or the matrix changed.
pub fn results_value(journal: &JournalData) -> Result<Value, String> {
    let records = extract_records(journal.events.iter().map(|l| &l.event));
    let groups = group_sessions(&records);
    let mut sessions = Vec::with_capacity(MATRIX.len());
    for &(workload, opt_kind) in &MATRIX {
        let label = session_label(workload, opt_kind);
        let (_, recs) = groups.iter().find(|(s, _)| *s == label).ok_or_else(|| {
            format!("journal has no diag records for session '{label}' (run with diag=on?)")
        })?;
        let summary = summarize_session(&label, recs);
        let cal = calibration(recs);
        let curve: Vec<Value> = summary
            .best_curve
            .iter()
            .map(|&(iter, best)| Value::Array(vec![uint(iter), float_or_null(best)]))
            .collect();
        sessions.push(obj(vec![
            ("session", Value::String(label)),
            ("workload", Value::String(workload.name().to_string())),
            ("optimizer", Value::String(opt_kind.label().to_string())),
            ("iters", uint(summary.iters)),
            ("n_ok", uint(summary.n_ok)),
            ("n_crash", uint(summary.n_crash)),
            ("n_fault", uint(summary.n_fault)),
            ("n_predicted", uint(summary.n_predicted)),
            ("final_best", float_or_null(summary.final_best)),
            ("final_regret", opt_float(summary.final_regret)),
            ("final_cum_regret", opt_float(summary.final_cum_regret)),
            ("mean_novelty", opt_float(summary.mean_novelty)),
            ("best_curve", Value::Array(curve)),
            ("calibration", cal.as_ref().map_or(Value::Null, calibration_value)),
        ]));
    }
    Ok(obj(vec![("sessions", Value::Array(sessions))]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_all_seven_paper_optimizers_twice() {
        for kind in OptimizerKind::PAPER {
            let n = MATRIX.iter().filter(|&&(_, o)| o == kind).count();
            assert_eq!(n, 2, "{} must appear once per workload", kind.label());
        }
        assert_eq!(MATRIX.len(), 14);
    }

    #[test]
    fn session_labels_are_lint_clean_slugs() {
        for &(w, o) in &MATRIX {
            let label = session_label(w, o);
            assert!(
                label
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "_./".contains(c)),
                "label '{label}' has characters that would not survive grouping"
            );
        }
    }

    #[test]
    fn results_value_requires_diag_records() {
        let journal = JournalData { source: "unit".into(), version: 1, events: Vec::new() };
        let err = results_value(&journal).expect_err("empty journal must be rejected");
        assert!(err.contains("diag=on"), "{err}");
    }
}
