//! Machine-learning substrate for `dbtune`.
//!
//! Every learner the paper's evaluation relies on is implemented here from
//! scratch: CART regression trees and random forests (SMAC's surrogate, the
//! Gini importance source, and the fANOVA carrier), gradient boosting,
//! linear models with lasso/ridge regularization (OtterTune's knob ranker),
//! k-nearest-neighbour regression, ε/ν support-vector regression (the Table 9
//! surrogate-model zoo), and multi-layer perceptrons with Adam (the
//! CDBTune-style DDPG actor/critic networks).
//!
//! All learners implement [`Regressor`] so higher layers (surrogate
//! benchmark, importance measurements, RGPE) can treat them uniformly.

pub mod dataset;
pub mod forest;
pub mod gbdt;
pub mod knn;
pub mod linear;
pub mod mlp;
pub mod svr;
pub mod tree;

pub use dataset::{kfold_indices, train_test_split, FeatureKind};
pub use forest::{RandomForest, RandomForestParams};
pub use gbdt::{GradientBoosting, GradientBoostingParams};
pub use knn::KnnRegressor;
pub use linear::{LassoRegression, LinearRegression, PolynomialFeatures, RidgeRegression};
pub use mlp::{Activation, Mlp, MlpParams};
pub use svr::{SvrKind, SvrParams, SvrRegressor};
pub use tree::{DecisionTree, DecisionTreeParams, FitScratch, Node, SplitRule};

/// A regression model over row-major `f64` feature vectors.
///
/// `fit` consumes a training sample; `predict` evaluates a single row.
/// Implementations must be deterministic given their seed parameters so
/// experiments are reproducible.
pub trait Regressor {
    /// Fits the model to `(x, y)` pairs. `x` is row-major, one row per sample.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]);

    /// Predicts the target for one feature row.
    fn predict(&self, row: &[f64]) -> f64;

    /// Predicts a batch of rows; the default maps [`Regressor::predict`].
    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict(r)).collect()
    }
}

/// Mean prediction and predictive variance, for surrogates that expose
/// uncertainty (random forests via tree disagreement, GPs elsewhere).
pub trait UncertainRegressor: Regressor {
    /// Returns `(mean, variance)` of the predictive distribution at `row`.
    fn predict_with_variance(&self, row: &[f64]) -> (f64, f64);
}
