//! Gradient-boosted regression trees with squared loss and shrinkage.
//!
//! One of the Table 9 surrogate-model candidates ("GB"); the paper finds it
//! tied with random forests as the best surrogate family.

use crate::dataset::FeatureKind;
use crate::tree::{DecisionTree, DecisionTreeParams};
use crate::Regressor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Gradient-boosting hyper-parameters.
#[derive(Clone, Debug)]
pub struct GradientBoostingParams {
    /// Number of boosting stages.
    pub n_stages: usize,
    /// Shrinkage applied to every stage's contribution.
    pub learning_rate: f64,
    /// Depth of each weak learner.
    pub max_depth: usize,
    /// Minimum samples per leaf for weak learners.
    pub min_samples_leaf: usize,
    /// Fraction of rows sampled per stage (stochastic gradient boosting,
    /// Friedman 2002); 1.0 fits every stage on the full sample.
    pub subsample: f64,
    /// RNG seed for row subsampling.
    pub seed: u64,
}

impl Default for GradientBoostingParams {
    fn default() -> Self {
        Self {
            n_stages: 120,
            learning_rate: 0.08,
            max_depth: 4,
            min_samples_leaf: 3,
            subsample: 1.0,
            seed: 0,
        }
    }
}

/// A fitted gradient-boosting ensemble.
#[derive(Clone, Debug)]
pub struct GradientBoosting {
    params: GradientBoostingParams,
    feature_kinds: Vec<FeatureKind>,
    base: f64,
    stages: Vec<DecisionTree>,
}

impl GradientBoosting {
    /// Creates an unfitted model over columns described by `feature_kinds`.
    pub fn new(params: GradientBoostingParams, feature_kinds: Vec<FeatureKind>) -> Self {
        Self { params, feature_kinds, base: 0.0, stages: Vec::new() }
    }

    /// Convenience constructor for all-continuous features.
    pub fn continuous(params: GradientBoostingParams, dim: usize) -> Self {
        Self::new(params, vec![FeatureKind::Continuous; dim])
    }

    /// Number of fitted stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// The fitted stage trees (empty before `fit`).
    pub fn stages(&self) -> &[DecisionTree] {
        &self.stages
    }

    /// The shrinkage applied to each stage's contribution.
    pub fn learning_rate(&self) -> f64 {
        self.params.learning_rate
    }

    /// The constant base prediction (training-target mean).
    pub fn base(&self) -> f64 {
        self.base
    }

    /// Fits with early stopping: after each stage the RMSE on the
    /// validation split is checked, and fitting stops once it has not
    /// improved for `patience` stages (the ensemble is truncated at the
    /// best stage). Prevents late stages from fitting noise — which
    /// matters when the ensemble is used for attribution, not just
    /// prediction.
    pub fn fit_with_validation(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        x_val: &[Vec<f64>],
        y_val: &[f64],
        patience: usize,
    ) {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty() && !x_val.is_empty());
        self.base = y.iter().sum::<f64>() / y.len() as f64;
        self.stages.clear();

        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut residual: Vec<f64> = y.iter().map(|v| v - self.base).collect();
        let idx: Vec<usize> = (0..x.len()).collect();
        let tree_params = DecisionTreeParams {
            max_depth: self.params.max_depth,
            min_samples_leaf: self.params.min_samples_leaf,
            min_samples_split: self.params.min_samples_leaf * 2,
            max_features: None,
        };
        let mut val_pred: Vec<f64> = vec![self.base; x_val.len()];
        let mut best_rmse = f64::INFINITY;
        let mut best_stages = 0usize;
        // Shared across stages: the design matrix never changes, only
        // the residual target does (see `FitScratch`).
        let mut scratch = crate::tree::FitScratch::for_design(x, self.feature_kinds.len());
        for stage in 0..self.params.n_stages {
            let stage_idx = self.stage_rows(&idx, &mut rng);
            let mut tree = DecisionTree::new(tree_params.clone(), self.feature_kinds.clone());
            tree.fit_indices_with(&mut scratch, x, &residual, &stage_idx, &mut rng);
            for (r, row) in residual.iter_mut().zip(x) {
                *r -= self.params.learning_rate * tree.predict(row);
            }
            for (p, row) in val_pred.iter_mut().zip(x_val) {
                *p += self.params.learning_rate * tree.predict(row);
            }
            self.stages.push(tree);

            let mut mse = 0.0;
            for (p, t) in val_pred.iter().zip(y_val) {
                mse += (p - t) * (p - t);
            }
            let rmse = (mse / y_val.len() as f64).sqrt();
            if rmse < best_rmse - 1e-12 {
                best_rmse = rmse;
                best_stages = stage + 1;
            } else if stage + 1 >= best_stages + patience {
                break;
            }
        }
        self.stages.truncate(best_stages.max(1));
    }
}

impl GradientBoosting {
    /// Row indices for one boosting stage (subsampled without
    /// replacement when `subsample < 1`).
    fn stage_rows(&self, idx: &[usize], rng: &mut StdRng) -> Vec<usize> {
        if self.params.subsample >= 1.0 {
            return idx.to_vec();
        }
        use rand::seq::SliceRandom;
        let k = ((idx.len() as f64) * self.params.subsample).ceil().max(2.0) as usize;
        let mut pool = idx.to_vec();
        pool.shuffle(rng);
        pool.truncate(k.min(idx.len()));
        pool
    }
}

impl Regressor for GradientBoosting {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty());
        self.base = y.iter().sum::<f64>() / y.len() as f64;
        self.stages.clear();

        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut residual: Vec<f64> = y.iter().map(|v| v - self.base).collect();
        let idx: Vec<usize> = (0..x.len()).collect();
        let tree_params = DecisionTreeParams {
            max_depth: self.params.max_depth,
            min_samples_leaf: self.params.min_samples_leaf,
            min_samples_split: self.params.min_samples_leaf * 2,
            max_features: None,
        };
        let mut scratch = crate::tree::FitScratch::for_design(x, self.feature_kinds.len());
        for _ in 0..self.params.n_stages {
            let stage_idx = self.stage_rows(&idx, &mut rng);
            let mut tree = DecisionTree::new(tree_params.clone(), self.feature_kinds.clone());
            tree.fit_indices_with(&mut scratch, x, &residual, &stage_idx, &mut rng);
            for (r, row) in residual.iter_mut().zip(x) {
                *r -= self.params.learning_rate * tree.predict(row);
            }
            self.stages.push(tree);
        }
    }

    fn predict(&self, row: &[f64]) -> f64 {
        let boost: f64 = self.stages.iter().map(|t| t.predict(row)).sum();
        self.base + self.params.learning_rate * boost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn boosting_reduces_training_error_monotonically_enough() {
        let mut rng = StdRng::seed_from_u64(1);
        let x: Vec<Vec<f64>> = (0..200).map(|_| vec![rng.gen::<f64>() * 4.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0]).sin() * 5.0 + r[0]).collect();

        let mut weak = GradientBoosting::continuous(
            GradientBoostingParams { n_stages: 5, ..Default::default() },
            1,
        );
        weak.fit(&x, &y);
        let mut strong = GradientBoosting::continuous(
            GradientBoostingParams { n_stages: 150, ..Default::default() },
            1,
        );
        strong.fit(&x, &y);

        let err = |m: &GradientBoosting| dbtune_linalg::stats::rmse(&m.predict_batch(&x), &y);
        assert!(err(&strong) < err(&weak) * 0.5, "boosting failed to improve fit");
    }

    #[test]
    fn predicts_mean_with_zero_stages() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![2.0, 4.0];
        let mut m = GradientBoosting::continuous(
            GradientBoostingParams { n_stages: 0, ..Default::default() },
            1,
        );
        m.fit(&x, &y);
        assert!((m.predict(&[0.5]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn early_stopping_truncates_noise_stages() {
        let mut rng = StdRng::seed_from_u64(7);
        // Signal in x0, plus pure noise targets.
        let x: Vec<Vec<f64>> = (0..300).map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()]).collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] + rng.gen::<f64>() * 0.5).collect();
        let xv: Vec<Vec<f64>> =
            (0..100).map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()]).collect();
        let yv: Vec<f64> = xv.iter().map(|r| 3.0 * r[0] + rng.gen::<f64>() * 0.5).collect();
        let mut m = GradientBoosting::continuous(
            GradientBoostingParams { n_stages: 400, ..Default::default() },
            2,
        );
        m.fit_with_validation(&x, &y, &xv, &yv, 10);
        assert!(m.n_stages() < 400, "early stopping never triggered");
        assert!(m.n_stages() >= 1);
        // Validation fit quality should still be decent.
        let r2 = dbtune_linalg::stats::r_squared(&m.predict_batch(&xv), &yv);
        assert!(r2 > 0.8, "early-stopped model too weak: {r2}");
    }

    #[test]
    fn handles_categorical_features() {
        // y depends on category parity, not order.
        let x: Vec<Vec<f64>> = (0..80).map(|i| vec![(i % 4) as f64]).collect();
        let y: Vec<f64> = (0..80).map(|i| if i % 2 == 0 { 1.0 } else { 9.0 }).collect();
        let mut m = GradientBoosting::new(
            GradientBoostingParams::default(),
            vec![FeatureKind::Categorical { cardinality: 4 }],
        );
        m.fit(&x, &y);
        assert!((m.predict(&[0.0]) - 1.0).abs() < 0.5);
        assert!((m.predict(&[3.0]) - 9.0).abs() < 0.5);
    }
}
