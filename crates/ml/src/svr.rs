//! RBF-kernel support-vector regression (ε-SVR and ν-SVR), two members of
//! the Table 9 surrogate-model zoo.
//!
//! Training solves the bias-free dual formulation by cyclic coordinate
//! descent: with the kernel augmented by a constant (`k' = k + 1`, which
//! absorbs the intercept), the dual objective is
//! `½ βᵀK'β − βᵀy + ε‖β‖₁` subject to `|βᵢ| ≤ C`, and each coordinate has a
//! closed-form soft-thresholded update. ν-SVR adapts ε between sweeps so
//! that roughly a `ν` fraction of training points lies outside the tube.

use crate::Regressor;
use dbtune_linalg::matrix::sq_dist;
use dbtune_linalg::stats::Standardizer;

/// Which SVR variant to train.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SvrKind {
    /// Fixed-width ε-insensitive tube.
    Epsilon {
        /// Half-width of the insensitive tube.
        epsilon: f64,
    },
    /// Tube width adapted so ~`nu` of samples are support vectors.
    Nu {
        /// Target fraction of out-of-tube points in `(0, 1)`.
        nu: f64,
    },
}

/// SVR hyper-parameters.
#[derive(Clone, Debug)]
pub struct SvrParams {
    /// Variant (ε- or ν-SVR).
    pub kind: SvrKind,
    /// Box constraint on dual coefficients.
    pub c: f64,
    /// RBF kernel width `exp(−γ‖x−x'‖²)`; `None` uses `1/d` ("scale"-like).
    pub gamma: Option<f64>,
    /// Number of coordinate-descent sweeps.
    pub max_sweeps: usize,
}

impl Default for SvrParams {
    fn default() -> Self {
        Self { kind: SvrKind::Epsilon { epsilon: 0.1 }, c: 10.0, gamma: None, max_sweeps: 60 }
    }
}

/// A fitted SVR model.
#[derive(Clone, Debug)]
pub struct SvrRegressor {
    params: SvrParams,
    beta: Vec<f64>,
    x: Vec<Vec<f64>>,
    gamma: f64,
    y_mean: f64,
    y_scale: f64,
    standardizer: Option<Standardizer>,
}

impl SvrRegressor {
    /// Creates an unfitted SVR.
    pub fn new(params: SvrParams) -> Self {
        Self {
            params,
            beta: Vec::new(),
            x: Vec::new(),
            gamma: 1.0,
            y_mean: 0.0,
            y_scale: 1.0,
            standardizer: None,
        }
    }

    /// Number of support vectors (non-zero dual coefficients).
    pub fn n_support(&self) -> usize {
        self.beta.iter().filter(|b| b.abs() > 1e-12).count()
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        (-self.gamma * sq_dist(a, b)).exp() + 1.0 // +1 absorbs the bias
    }
}

impl Regressor for SvrRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty());
        let st = Standardizer::fit(x);
        let z = st.transform_all(x);
        let n = z.len();
        let d = z[0].len();
        self.gamma = self.params.gamma.unwrap_or(1.0 / d as f64);

        // Normalize the target so epsilon/C defaults are scale-free.
        self.y_mean = dbtune_linalg::stats::mean(y);
        self.y_scale = dbtune_linalg::stats::std_dev(y).max(1e-12);
        let yn: Vec<f64> = y.iter().map(|v| (v - self.y_mean) / self.y_scale).collect();

        // Precompute the (augmented) kernel matrix.
        let mut k = vec![0.0; n * n];
        self.x = z;
        for i in 0..n {
            for j in i..n {
                let v = self.kernel(&self.x[i], &self.x[j]);
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
        }

        let mut eps = match self.params.kind {
            SvrKind::Epsilon { epsilon } => epsilon,
            SvrKind::Nu { .. } => 0.1,
        };
        let c = self.params.c;
        let mut beta = vec![0.0; n];
        // f[i] = Σ_j K_ij β_j, maintained incrementally.
        let mut f = vec![0.0; n];

        for sweep in 0..self.params.max_sweeps {
            let mut max_delta = 0.0f64;
            for i in 0..n {
                let kii = k[i * n + i];
                let resid = yn[i] - (f[i] - kii * beta[i]);
                let unclipped = soft(resid, eps) / kii;
                let new_b = unclipped.clamp(-c, c);
                let delta = new_b - beta[i];
                if delta != 0.0 {
                    for j in 0..n {
                        f[j] += delta * k[i * n + j];
                    }
                    beta[i] = new_b;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            // ν-SVR: retune the tube so ~ν of residuals fall outside it.
            if let SvrKind::Nu { nu } = self.params.kind {
                let mut abs_res: Vec<f64> = (0..n).map(|i| (yn[i] - f[i]).abs()).collect();
                abs_res.sort_by(dbtune_linalg::ord::cmp_f64);
                let q = ((1.0 - nu).clamp(0.0, 1.0) * (n - 1) as f64) as usize;
                eps = abs_res[q].max(1e-4);
            }
            if max_delta < 1e-8 && sweep > 0 {
                break;
            }
        }
        self.beta = beta;
        self.standardizer = Some(st);
    }

    fn predict(&self, row: &[f64]) -> f64 {
        let st = self.standardizer.as_ref().expect("predict on unfitted model");
        let z = st.transform(row);
        let raw: f64 = self
            .beta
            .iter()
            .zip(&self.x)
            .filter(|(b, _)| b.abs() > 1e-12)
            .map(|(b, xi)| b * self.kernel(xi, &z))
            .sum();
        raw * self.y_scale + self.y_mean
    }
}

#[inline]
fn soft(x: f64, eps: f64) -> f64 {
    if x > eps {
        x - eps
    } else if x < -eps {
        x + eps
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn wave_sample(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let v = rng.gen::<f64>() * 6.0;
            y.push(v.sin() * 3.0 + 0.5 * v);
            x.push(vec![v]);
        }
        (x, y)
    }

    #[test]
    fn epsilon_svr_fits_smooth_function() {
        let (x, y) = wave_sample(150, 1);
        let mut m = SvrRegressor::new(SvrParams {
            kind: SvrKind::Epsilon { epsilon: 0.02 },
            c: 50.0,
            gamma: Some(2.0),
            max_sweeps: 120,
        });
        m.fit(&x, &y);
        let r2 = dbtune_linalg::stats::r_squared(&m.predict_batch(&x), &y);
        assert!(r2 > 0.95, "epsilon-SVR R² too low: {r2}");
    }

    #[test]
    fn nu_svr_fits_smooth_function() {
        let (x, y) = wave_sample(150, 2);
        let mut m = SvrRegressor::new(SvrParams {
            kind: SvrKind::Nu { nu: 0.5 },
            c: 50.0,
            gamma: Some(2.0),
            max_sweeps: 120,
        });
        m.fit(&x, &y);
        let r2 = dbtune_linalg::stats::r_squared(&m.predict_batch(&x), &y);
        assert!(r2 > 0.9, "nu-SVR R² too low: {r2}");
    }

    #[test]
    fn wide_tube_sparsifies_support_vectors() {
        let (x, y) = wave_sample(100, 3);
        let mut narrow = SvrRegressor::new(SvrParams {
            kind: SvrKind::Epsilon { epsilon: 0.001 },
            ..Default::default()
        });
        narrow.fit(&x, &y);
        let mut wide = SvrRegressor::new(SvrParams {
            kind: SvrKind::Epsilon { epsilon: 1.0 },
            ..Default::default()
        });
        wide.fit(&x, &y);
        assert!(wide.n_support() < narrow.n_support());
    }

    #[test]
    fn constant_target_predicts_constant() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![7.0; 20];
        let mut m = SvrRegressor::new(SvrParams::default());
        m.fit(&x, &y);
        assert!((m.predict(&[5.0]) - 7.0).abs() < 0.2);
    }
}
