//! Multi-layer perceptrons with Adam, the substrate for the DDPG optimizer
//! (CDBTune's actor/critic networks).
//!
//! Beyond standard fit/predict, the network exposes what DDPG needs:
//! gradients with respect to the *inputs* (the deterministic policy
//! gradient flows from the critic's Q-value back through the action
//! inputs), single-sample gradient steps with externally supplied output
//! gradients, Polyak soft updates between online and target networks, and
//! flat weight export/import for the fine-tune transfer framework.

use crate::Regressor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// Hidden/output activation functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid (CDBTune's actor output squashes to `[0,1]`).
    Sigmoid,
    /// Identity (critic output).
    Linear,
}

impl Activation {
    #[inline]
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Linear => x,
        }
    }

    /// Derivative expressed in terms of the activation *output* `a`.
    #[inline]
    fn derivative_from_output(self, a: f64) -> f64 {
        match self {
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - a * a,
            Activation::Sigmoid => a * (1.0 - a),
            Activation::Linear => 1.0,
        }
    }
}

/// MLP architecture and training hyper-parameters.
#[derive(Clone, Debug)]
pub struct MlpParams {
    /// Input dimensionality.
    pub input_dim: usize,
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Output dimensionality.
    pub output_dim: usize,
    /// Hidden activation.
    pub hidden_activation: Activation,
    /// Output activation.
    pub output_activation: Activation,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Weight-initialization / shuffling seed.
    pub seed: u64,
}

impl MlpParams {
    /// A small regression network (used in tests and as a generic learner).
    pub fn regression(input_dim: usize, seed: u64) -> Self {
        Self {
            input_dim,
            hidden: vec![64, 64],
            output_dim: 1,
            hidden_activation: Activation::Relu,
            output_activation: Activation::Linear,
            learning_rate: 1e-3,
            seed,
        }
    }
}

#[derive(Clone, Debug)]
struct Layer {
    // Row-major weights: out_dim × in_dim.
    w: Vec<f64>,
    b: Vec<f64>,
    in_dim: usize,
    out_dim: usize,
    act: Activation,
    // Adam moments.
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Layer {
    fn new(in_dim: usize, out_dim: usize, act: Activation, rng: &mut StdRng) -> Self {
        // He/Xavier-style scaled Gaussian initialization.
        let scale = (2.0 / (in_dim + out_dim) as f64).sqrt();
        let normal = Normal::new(0.0, scale).expect("valid normal");
        let w = (0..in_dim * out_dim).map(|_| normal.sample(rng)).collect();
        Self {
            w,
            b: vec![0.0; out_dim],
            in_dim,
            out_dim,
            act,
            mw: vec![0.0; in_dim * out_dim],
            vw: vec![0.0; in_dim * out_dim],
            mb: vec![0.0; out_dim],
            vb: vec![0.0; out_dim],
        }
    }

    fn forward(&self, input: &[f64]) -> Vec<f64> {
        debug_assert_eq!(input.len(), self.in_dim);
        let mut out = Vec::with_capacity(self.out_dim);
        for o in 0..self.out_dim {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let z = self.b[o] + dbtune_linalg::matrix::dot(row, input);
            out.push(self.act.apply(z));
        }
        out
    }
}

/// A feed-forward network trained with Adam.
#[derive(Clone, Debug)]
pub struct Mlp {
    params: MlpParams,
    layers: Vec<Layer>,
    adam_t: u64,
}

const ADAM_B1: f64 = 0.9;
const ADAM_B2: f64 = 0.999;
const ADAM_EPS: f64 = 1e-8;

impl Mlp {
    /// Builds a network with randomly initialized weights.
    pub fn new(params: MlpParams) -> Self {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut dims = vec![params.input_dim];
        dims.extend_from_slice(&params.hidden);
        dims.push(params.output_dim);
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let act = if i + 2 == dims.len() {
                params.output_activation
            } else {
                params.hidden_activation
            };
            layers.push(Layer::new(dims[i], dims[i + 1], act, &mut rng));
        }
        Self { params, layers, adam_t: 0 }
    }

    /// Forward pass producing the output vector.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        let mut a = input.to_vec();
        for layer in &self.layers {
            a = layer.forward(&a);
        }
        a
    }

    /// Forward pass retaining per-layer activations for backprop.
    fn forward_cached(&self, input: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(input.to_vec());
        for layer in &self.layers {
            let next = layer.forward(acts.last().expect("nonempty"));
            acts.push(next);
        }
        acts
    }

    /// One Adam step from an externally supplied gradient of the loss with
    /// respect to the network *output*. Returns the gradient of the loss
    /// with respect to the *input* (needed by the DDPG actor update).
    // Index loops mirror the per-unit backprop equations.
    #[allow(clippy::needless_range_loop)]
    pub fn step_with_output_gradient(&mut self, input: &[f64], grad_out: &[f64]) -> Vec<f64> {
        let acts = self.forward_cached(input);
        self.adam_t += 1;
        let lr = self.params.learning_rate;
        let bc1 = 1.0 - ADAM_B1.powi(self.adam_t as i32);
        let bc2 = 1.0 - ADAM_B2.powi(self.adam_t as i32);

        let mut delta = grad_out.to_vec(); // dL/d(output activations)
        for (li, layer) in self.layers.iter_mut().enumerate().rev() {
            let a_out = &acts[li + 1];
            let a_in = &acts[li];
            // dL/dz through the activation.
            for (d, a) in delta.iter_mut().zip(a_out) {
                *d *= layer.act.derivative_from_output(*a);
            }
            // Gradient wrt previous activations before weights change.
            let mut prev_delta = vec![0.0; layer.in_dim];
            for o in 0..layer.out_dim {
                let dz = delta[o];
                if dz == 0.0 {
                    continue;
                }
                let row = &layer.w[o * layer.in_dim..(o + 1) * layer.in_dim];
                for (p, w) in prev_delta.iter_mut().zip(row) {
                    *p += dz * w;
                }
            }
            // Adam update of weights and biases.
            for o in 0..layer.out_dim {
                let dz = delta[o];
                let base = o * layer.in_dim;
                for i in 0..layer.in_dim {
                    let g = dz * a_in[i];
                    let k = base + i;
                    layer.mw[k] = ADAM_B1 * layer.mw[k] + (1.0 - ADAM_B1) * g;
                    layer.vw[k] = ADAM_B2 * layer.vw[k] + (1.0 - ADAM_B2) * g * g;
                    let mhat = layer.mw[k] / bc1;
                    let vhat = layer.vw[k] / bc2;
                    layer.w[k] -= lr * mhat / (vhat.sqrt() + ADAM_EPS);
                }
                layer.mb[o] = ADAM_B1 * layer.mb[o] + (1.0 - ADAM_B1) * dz;
                layer.vb[o] = ADAM_B2 * layer.vb[o] + (1.0 - ADAM_B2) * dz * dz;
                let mhat = layer.mb[o] / bc1;
                let vhat = layer.vb[o] / bc2;
                layer.b[o] -= lr * mhat / (vhat.sqrt() + ADAM_EPS);
            }
            delta = prev_delta;
        }
        delta
    }

    /// Gradient of a scalar projection `wᵀ output` with respect to the input,
    /// without updating any weights (critic → actor gradient flow).
    #[allow(clippy::needless_range_loop)]
    pub fn input_gradient(&self, input: &[f64], grad_out: &[f64]) -> Vec<f64> {
        let acts = self.forward_cached(input);
        let mut delta = grad_out.to_vec();
        for (li, layer) in self.layers.iter().enumerate().rev() {
            let a_out = &acts[li + 1];
            for (d, a) in delta.iter_mut().zip(a_out) {
                *d *= layer.act.derivative_from_output(*a);
            }
            let mut prev = vec![0.0; layer.in_dim];
            for o in 0..layer.out_dim {
                let dz = delta[o];
                if dz == 0.0 {
                    continue;
                }
                let row = &layer.w[o * layer.in_dim..(o + 1) * layer.in_dim];
                for (p, w) in prev.iter_mut().zip(row) {
                    *p += dz * w;
                }
            }
            delta = prev;
        }
        delta
    }

    /// One squared-loss SGD/Adam step on a single `(input, target)` pair.
    /// Returns the pre-update squared error.
    pub fn train_step(&mut self, input: &[f64], target: &[f64]) -> f64 {
        let out = self.forward(input);
        debug_assert_eq!(out.len(), target.len());
        let n = out.len() as f64;
        let grad: Vec<f64> = out.iter().zip(target).map(|(o, t)| 2.0 * (o - t) / n).collect();
        let err: f64 = out.iter().zip(target).map(|(o, t)| (o - t) * (o - t)).sum::<f64>() / n;
        self.step_with_output_gradient(input, &grad);
        err
    }

    /// Polyak soft update: `self ← τ·source + (1−τ)·self` (target networks).
    pub fn soft_update_from(&mut self, source: &Mlp, tau: f64) {
        assert_eq!(self.layers.len(), source.layers.len(), "architecture mismatch");
        for (dst, src) in self.layers.iter_mut().zip(&source.layers) {
            for (d, s) in dst.w.iter_mut().zip(&src.w) {
                *d = tau * s + (1.0 - tau) * *d;
            }
            for (d, s) in dst.b.iter_mut().zip(&src.b) {
                *d = tau * s + (1.0 - tau) * *d;
            }
        }
    }

    /// Flattens all weights and biases (fine-tune export).
    pub fn weights_flat(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for l in &self.layers {
            out.extend_from_slice(&l.w);
            out.extend_from_slice(&l.b);
        }
        out
    }

    /// Restores weights from a flat vector produced by
    /// [`Mlp::weights_flat`] on an identical architecture.
    pub fn set_weights_flat(&mut self, flat: &[f64]) {
        let mut off = 0;
        for l in &mut self.layers {
            let nw = l.w.len();
            l.w.copy_from_slice(&flat[off..off + nw]);
            off += nw;
            let nb = l.b.len();
            l.b.copy_from_slice(&flat[off..off + nb]);
            off += nb;
        }
        assert_eq!(off, flat.len(), "flat weight vector length mismatch");
    }

    /// The architecture parameters.
    pub fn params(&self) -> &MlpParams {
        &self.params
    }
}

impl Regressor for Mlp {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        let mut rng = StdRng::seed_from_u64(self.params.seed.wrapping_add(1));
        let epochs = 200;
        let mut order: Vec<usize> = (0..x.len()).collect();
        for _ in 0..epochs {
            use rand::seq::SliceRandom;
            order.shuffle(&mut rng);
            for &i in &order {
                self.train_step(&x[i], &[y[i]]);
            }
        }
    }

    fn predict(&self, row: &[f64]) -> f64 {
        self.forward(row)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_xor_like_function() {
        let x = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
        let y = vec![0.0, 1.0, 1.0, 0.0];
        let mut net = Mlp::new(MlpParams {
            input_dim: 2,
            hidden: vec![16, 16],
            output_dim: 1,
            hidden_activation: Activation::Tanh,
            output_activation: Activation::Linear,
            learning_rate: 5e-3,
            seed: 3,
        });
        net.fit(&x, &y);
        for (xi, yi) in x.iter().zip(&y) {
            assert!((net.predict(xi) - yi).abs() < 0.2, "xor not learned");
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let net = Mlp::new(MlpParams {
            input_dim: 3,
            hidden: vec![8],
            output_dim: 1,
            hidden_activation: Activation::Tanh,
            output_activation: Activation::Linear,
            learning_rate: 1e-3,
            seed: 5,
        });
        let x = vec![0.3, -0.2, 0.7];
        let grad = net.input_gradient(&x, &[1.0]);
        let h = 1e-6;
        for i in 0..3 {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let fd = (net.forward(&xp)[0] - net.forward(&xm)[0]) / (2.0 * h);
            assert!((grad[i] - fd).abs() < 1e-5, "grad {i}: {} vs fd {fd}", grad[i]);
        }
    }

    #[test]
    fn soft_update_converges_to_source() {
        let params = MlpParams::regression(2, 7);
        let src = Mlp::new(MlpParams { seed: 100, ..params.clone() });
        let mut dst = Mlp::new(MlpParams { seed: 200, ..params });
        for _ in 0..2000 {
            dst.soft_update_from(&src, 0.01);
        }
        let a = src.forward(&[0.5, 0.5])[0];
        let b = dst.forward(&[0.5, 0.5])[0];
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn weight_flat_round_trip() {
        let params = MlpParams::regression(4, 9);
        let src = Mlp::new(MlpParams { seed: 1, ..params.clone() });
        let mut dst = Mlp::new(MlpParams { seed: 2, ..params });
        dst.set_weights_flat(&src.weights_flat());
        let x = [0.1, 0.2, 0.3, 0.4];
        assert_eq!(src.forward(&x), dst.forward(&x));
    }

    #[test]
    fn sigmoid_output_bounds_actions() {
        let net = Mlp::new(MlpParams {
            input_dim: 2,
            hidden: vec![8],
            output_dim: 3,
            hidden_activation: Activation::Relu,
            output_activation: Activation::Sigmoid,
            learning_rate: 1e-3,
            seed: 11,
        });
        let out = net.forward(&[100.0, -100.0]);
        assert!(out.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn train_step_reduces_error() {
        let mut net = Mlp::new(MlpParams::regression(1, 13));
        let before = net.train_step(&[0.5], &[3.0]);
        let mut after = before;
        for _ in 0..500 {
            after = net.train_step(&[0.5], &[3.0]);
        }
        assert!(after < before * 0.01, "training failed: {before} -> {after}");
    }
}
