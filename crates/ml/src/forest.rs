//! Random forest regression: bootstrap aggregation of CART trees with
//! feature subsampling.
//!
//! The forest triples as (1) SMAC's surrogate — predictive mean/variance
//! come from the across-tree disagreement, giving the Gaussian
//! `N(μ̂, σ̂²)` SMAC assumes; (2) the source of Gini importance — split
//! counts aggregated over all trees; (3) the carrier for fANOVA, which
//! marginalizes each tree's piecewise-constant function.

use crate::dataset::FeatureKind;
use crate::tree::{DecisionTree, DecisionTreeParams};
use crate::{Regressor, UncertainRegressor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Random-forest hyper-parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RandomForestParams {
    /// Number of trees in the ensemble.
    pub n_trees: usize,
    /// Per-tree parameters (depth, leaf size, feature subsampling).
    pub tree: DecisionTreeParams,
    /// Bootstrap sample fraction (1.0 = classic bagging with replacement).
    pub bootstrap_fraction: f64,
    /// RNG seed for reproducible fits.
    pub seed: u64,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        Self {
            n_trees: 40,
            tree: DecisionTreeParams {
                min_samples_leaf: 2,
                min_samples_split: 4,
                ..Default::default()
            },
            bootstrap_fraction: 1.0,
            seed: 0,
        }
    }
}

impl RandomForestParams {
    /// A forest sized for surrogate duty inside optimizers (SMAC): modest
    /// tree count, feature subsampling scaled to the dimensionality.
    pub fn surrogate(dim: usize, seed: u64) -> Self {
        let max_features = ((dim as f64) * 5.0 / 6.0).ceil().max(1.0) as usize;
        Self {
            n_trees: 24,
            tree: DecisionTreeParams {
                min_samples_leaf: 3,
                min_samples_split: 6,
                max_features: Some(max_features),
                ..Default::default()
            },
            bootstrap_fraction: 1.0,
            seed,
        }
    }
}

/// A fitted random forest.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RandomForest {
    params: RandomForestParams,
    feature_kinds: Vec<FeatureKind>,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Creates an unfitted forest over columns described by `feature_kinds`.
    pub fn new(params: RandomForestParams, feature_kinds: Vec<FeatureKind>) -> Self {
        Self { params, feature_kinds, trees: Vec::new() }
    }

    /// Convenience constructor assuming all-continuous features.
    pub fn continuous(params: RandomForestParams, dim: usize) -> Self {
        Self::new(params, vec![FeatureKind::Continuous; dim])
    }

    /// The fitted trees (empty before `fit`).
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Total split count per feature across all trees — the Gini score of
    /// Tuneful (Nembrini et al. formulation used by the paper).
    pub fn split_counts(&self) -> Vec<usize> {
        let d = self.feature_kinds.len();
        let mut counts = vec![0usize; d];
        for t in &self.trees {
            for (c, tc) in counts.iter_mut().zip(t.split_counts()) {
                *c += tc;
            }
        }
        counts
    }

    /// The feature descriptors the forest was built with.
    pub fn feature_kinds(&self) -> &[FeatureKind] {
        &self.feature_kinds
    }

    /// Whether `fit` has been called.
    pub fn is_fitted(&self) -> bool {
        !self.trees.is_empty()
    }

    /// [`UncertainRegressor::predict_with_variance`] over a whole batch of
    /// rows, reusing one per-tree prediction buffer across the batch
    /// instead of allocating per row. Each element is bit-identical to the
    /// pointwise call — same tree traversals, same summation order.
    pub fn predict_with_variance_batch(&self, rows: &[Vec<f64>]) -> Vec<(f64, f64)> {
        assert!(self.is_fitted(), "predict on unfitted forest");
        let mut preds = vec![0.0; self.trees.len()];
        rows.iter()
            .map(|row| {
                for (p, t) in preds.iter_mut().zip(&self.trees) {
                    *p = t.predict(row);
                }
                let mean = preds.iter().sum::<f64>() / preds.len() as f64;
                let var =
                    preds.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / preds.len() as f64;
                (mean, var)
            })
            .collect()
    }
}

impl Regressor for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "cannot fit forest on empty sample");
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let n = x.len();
        let n_boot = ((n as f64) * self.params.bootstrap_fraction).round().max(1.0) as usize;
        self.trees.clear();
        self.trees.reserve(self.params.n_trees);
        // One scratch for the whole ensemble: the column-major copy of
        // `x` and every build buffer are shared across trees instead of
        // being reallocated per tree (same splits to the bit — see
        // `FitScratch`). This was the worst allocation-churn site in a
        // SMAC session by an order of magnitude.
        let mut scratch = crate::tree::FitScratch::for_design(x, self.feature_kinds.len());
        let mut indices: Vec<usize> = Vec::with_capacity(n_boot);
        for _ in 0..self.params.n_trees {
            indices.clear();
            indices.extend((0..n_boot).map(|_| rng.gen_range(0..n)));
            let mut tree = DecisionTree::new(self.params.tree.clone(), self.feature_kinds.clone());
            tree.fit_indices_with(&mut scratch, x, y, &indices, &mut rng);
            self.trees.push(tree);
        }
    }

    fn predict(&self, row: &[f64]) -> f64 {
        assert!(self.is_fitted(), "predict on unfitted forest");
        self.trees.iter().map(|t| t.predict(row)).sum::<f64>() / self.trees.len() as f64
    }
}

impl UncertainRegressor for RandomForest {
    fn predict_with_variance(&self, row: &[f64]) -> (f64, f64) {
        assert!(self.is_fitted(), "predict on unfitted forest");
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(row)).collect();
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        let var = preds.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / preds.len() as f64;
        (mean, var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn friedman_sample(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        // A standard nonlinear regression benchmark (Friedman #1, 5 dims).
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let row: Vec<f64> = (0..5).map(|_| rng.gen::<f64>()).collect();
            let t = 10.0 * (std::f64::consts::PI * row[0] * row[1]).sin()
                + 20.0 * (row[2] - 0.5) * (row[2] - 0.5)
                + 10.0 * row[3]
                + 5.0 * row[4];
            y.push(t);
            x.push(row);
        }
        (x, y)
    }

    #[test]
    fn forest_fits_nonlinear_function() {
        let (x, y) = friedman_sample(400, 7);
        let (xt, yt) = friedman_sample(100, 8);
        let mut rf = RandomForest::continuous(RandomForestParams::default(), 5);
        rf.fit(&x, &y);
        let pred = rf.predict_batch(&xt);
        let r2 = dbtune_linalg::stats::r_squared(&pred, &yt);
        assert!(r2 > 0.75, "forest R² too low: {r2}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = friedman_sample(100, 3);
        let mut a =
            RandomForest::continuous(RandomForestParams { seed: 42, ..Default::default() }, 5);
        let mut b =
            RandomForest::continuous(RandomForestParams { seed: 42, ..Default::default() }, 5);
        a.fit(&x, &y);
        b.fit(&x, &y);
        for row in x.iter().take(10) {
            assert_eq!(a.predict(row), b.predict(row));
        }
    }

    #[test]
    fn variance_is_nonnegative_and_zero_on_constant_target() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y = vec![2.0; 30];
        let mut rf = RandomForest::continuous(RandomForestParams::default(), 1);
        rf.fit(&x, &y);
        let (m, v) = rf.predict_with_variance(&[10.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!(v.abs() < 1e-18);
    }

    #[test]
    fn split_counts_prefer_informative_feature() {
        let mut rng = StdRng::seed_from_u64(11);
        let x: Vec<Vec<f64>> = (0..300).map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * 10.0).collect(); // only feature 0 matters
        let mut rf = RandomForest::continuous(RandomForestParams::default(), 2);
        rf.fit(&x, &y);
        let counts = rf.split_counts();
        assert!(
            counts[0] > counts[1] * 3,
            "informative feature should dominate splits: {counts:?}"
        );
    }

    #[test]
    fn variance_grows_away_from_data() {
        let (x, y) = friedman_sample(200, 5);
        let mut rf = RandomForest::continuous(RandomForestParams::default(), 5);
        rf.fit(&x, &y);
        // In-sample point variance should generally be modest; probing
        // ensures the API shape rather than a statistical guarantee.
        let (_, v) = rf.predict_with_variance(&x[0]);
        assert!(v >= 0.0);
    }
}
