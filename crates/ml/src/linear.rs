//! Linear models: ordinary least squares, ridge regression (Table 9's "RR"),
//! lasso via cyclic coordinate descent (OtterTune's knob-importance ranker),
//! and the degree-2 polynomial feature expansion OtterTune pairs with it.
//!
//! All models standardize features internally; lasso additionally centers
//! the target so no intercept penalty is needed.

use crate::Regressor;
use dbtune_linalg::cholesky::solve_spd;
use dbtune_linalg::stats::Standardizer;
use dbtune_linalg::Matrix;

/// Expands feature rows with pairwise products and squares
/// (`x_i`, `x_i²`, `x_i·x_j`), the "second-degree polynomial features"
/// OtterTune adds before its Lasso ranking.
#[derive(Clone, Debug)]
pub struct PolynomialFeatures {
    dim: usize,
}

impl PolynomialFeatures {
    /// Creates an expander for `dim`-dimensional inputs.
    pub fn new(dim: usize) -> Self {
        Self { dim }
    }

    /// Output dimensionality: `d + d(d+1)/2`.
    pub fn output_dim(&self) -> usize {
        self.dim + self.dim * (self.dim + 1) / 2
    }

    /// Expands one row.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.dim);
        let mut out = Vec::with_capacity(self.output_dim());
        out.extend_from_slice(row);
        for i in 0..self.dim {
            for j in i..self.dim {
                out.push(row[i] * row[j]);
            }
        }
        out
    }

    /// Expands a batch of rows.
    pub fn transform_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }

    /// Maps an expanded-feature index back to the base feature(s) it
    /// involves; used to fold polynomial-term importances onto base knobs.
    pub fn base_features(&self, expanded_index: usize) -> (usize, Option<usize>) {
        if expanded_index < self.dim {
            return (expanded_index, None);
        }
        let mut k = expanded_index - self.dim;
        for i in 0..self.dim {
            let row_len = self.dim - i;
            if k < row_len {
                let j = i + k;
                return if i == j { (i, None) } else { (i, Some(j)) };
            }
            k -= row_len;
        }
        unreachable!("expanded index {expanded_index} out of range");
    }
}

/// Ordinary least squares via the normal equations (tiny ridge for
/// numerical stability).
#[derive(Clone, Debug, Default)]
pub struct LinearRegression {
    weights: Vec<f64>,
    intercept: f64,
    standardizer: Option<Standardizer>,
}

impl LinearRegression {
    /// Creates an unfitted model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fitted coefficients (standardized space).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Regressor for LinearRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        let (w, b, st) = fit_ridge(x, y, 1e-8);
        self.weights = w;
        self.intercept = b;
        self.standardizer = Some(st);
    }

    fn predict(&self, row: &[f64]) -> f64 {
        let st = self.standardizer.as_ref().expect("predict on unfitted model");
        let z = st.transform(row);
        self.intercept + dbtune_linalg::matrix::dot(&self.weights, &z)
    }
}

/// Ridge regression (`L2` penalty) solved in closed form via Cholesky.
#[derive(Clone, Debug)]
pub struct RidgeRegression {
    /// L2 penalty strength.
    pub alpha: f64,
    weights: Vec<f64>,
    intercept: f64,
    standardizer: Option<Standardizer>,
}

impl RidgeRegression {
    /// Creates an unfitted model with penalty `alpha`.
    pub fn new(alpha: f64) -> Self {
        Self { alpha, weights: Vec::new(), intercept: 0.0, standardizer: None }
    }

    /// Fitted coefficients (standardized space).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Regressor for RidgeRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        let (w, b, st) = fit_ridge(x, y, self.alpha);
        self.weights = w;
        self.intercept = b;
        self.standardizer = Some(st);
    }

    fn predict(&self, row: &[f64]) -> f64 {
        let st = self.standardizer.as_ref().expect("predict on unfitted model");
        let z = st.transform(row);
        self.intercept + dbtune_linalg::matrix::dot(&self.weights, &z)
    }
}

/// Shared ridge solver on standardized features and centered target.
fn fit_ridge(x: &[Vec<f64>], y: &[f64], alpha: f64) -> (Vec<f64>, f64, Standardizer) {
    assert_eq!(x.len(), y.len());
    assert!(!x.is_empty());
    let st = Standardizer::fit(x);
    let z = st.transform_all(x);
    let y_mean = dbtune_linalg::stats::mean(y);
    let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

    let zm = Matrix::from_rows(&z);
    let mut gram = zm.gram();
    gram.add_diagonal(alpha.max(1e-12));
    let zty = zm.transpose().matvec(&yc);
    let w = solve_spd(&gram, &zty).expect("ridge normal equations not SPD");
    (w, y_mean, st)
}

/// Lasso regression (`L1` penalty) via cyclic coordinate descent on
/// standardized features.
#[derive(Clone, Debug)]
pub struct LassoRegression {
    /// L1 penalty strength (on the mean-loss scale, as in scikit-learn).
    pub alpha: f64,
    /// Maximum coordinate-descent sweeps.
    pub max_iter: usize,
    /// Convergence tolerance on the maximum coefficient change.
    pub tol: f64,
    weights: Vec<f64>,
    intercept: f64,
    standardizer: Option<Standardizer>,
}

impl LassoRegression {
    /// Creates an unfitted lasso with penalty `alpha`.
    pub fn new(alpha: f64) -> Self {
        Self {
            alpha,
            max_iter: 300,
            tol: 1e-7,
            weights: Vec::new(),
            intercept: 0.0,
            standardizer: None,
        }
    }

    /// Fitted coefficients (standardized space). Zeros mark pruned features.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of non-zero coefficients.
    pub fn n_active(&self) -> usize {
        self.weights.iter().filter(|w| w.abs() > 0.0).count()
    }
}

impl Regressor for LassoRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty());
        let st = Standardizer::fit(x);
        let z = st.transform_all(x);
        let n = z.len();
        let d = z[0].len();
        let y_mean = dbtune_linalg::stats::mean(y);
        let r0: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        // Column-major copy so coordinate updates stream one column.
        let mut cols: Vec<Vec<f64>> = vec![Vec::with_capacity(n); d];
        for row in &z {
            for (c, v) in cols.iter_mut().zip(row) {
                c.push(*v);
            }
        }
        let col_sq: Vec<f64> = cols.iter().map(|c| c.iter().map(|v| v * v).sum::<f64>()).collect();

        let mut w = vec![0.0; d];
        let mut residual = r0;
        let lam = self.alpha * n as f64; // scikit-learn objective scaling

        for _ in 0..self.max_iter {
            let mut max_delta = 0.0f64;
            for j in 0..d {
                if col_sq[j] == 0.0 {
                    continue;
                }
                let wj = w[j];
                // rho = x_jᵀ(residual + x_j w_j)
                let mut rho = 0.0;
                for (xv, rv) in cols[j].iter().zip(&residual) {
                    rho += xv * rv;
                }
                rho += col_sq[j] * wj;
                let new_w = soft_threshold(rho, lam) / col_sq[j];
                if new_w != wj {
                    let delta = new_w - wj;
                    for (rv, xv) in residual.iter_mut().zip(&cols[j]) {
                        *rv -= delta * xv;
                    }
                    w[j] = new_w;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.tol {
                break;
            }
        }
        self.weights = w;
        self.intercept = y_mean;
        self.standardizer = Some(st);
    }

    fn predict(&self, row: &[f64]) -> f64 {
        let st = self.standardizer.as_ref().expect("predict on unfitted model");
        let z = st.transform(row);
        self.intercept + dbtune_linalg::matrix::dot(&self.weights, &z)
    }
}

#[inline]
fn soft_threshold(x: f64, lam: f64) -> f64 {
    if x > lam {
        x - lam
    } else if x < -lam {
        x + lam
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn linear_sample(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let row: Vec<f64> = (0..4).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
            // y = 3 x0 - 2 x1 + 0*x2 + 0*x3 + small noise
            y.push(3.0 * row[0] - 2.0 * row[1] + rng.gen::<f64>() * 0.01);
            x.push(row);
        }
        (x, y)
    }

    #[test]
    fn ols_recovers_coefficients() {
        let (x, y) = linear_sample(200, 1);
        let mut m = LinearRegression::new();
        m.fit(&x, &y);
        let pred = m.predict_batch(&x);
        assert!(dbtune_linalg::stats::r_squared(&pred, &y) > 0.999);
    }

    #[test]
    fn ridge_shrinks_relative_to_ols() {
        let (x, y) = linear_sample(50, 2);
        let mut ols = LinearRegression::new();
        ols.fit(&x, &y);
        let mut ridge = RidgeRegression::new(100.0);
        ridge.fit(&x, &y);
        let norm = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>();
        assert!(norm(ridge.weights()) < norm(ols.weights()));
    }

    #[test]
    fn lasso_zeroes_irrelevant_features() {
        let (x, y) = linear_sample(300, 3);
        let mut lasso = LassoRegression::new(0.05);
        lasso.fit(&x, &y);
        let w = lasso.weights();
        assert!(w[0].abs() > 0.5, "informative feature pruned: {w:?}");
        assert!(w[1].abs() > 0.3, "informative feature pruned: {w:?}");
        assert!(w[2].abs() < 0.02, "irrelevant feature kept: {w:?}");
        assert!(w[3].abs() < 0.02, "irrelevant feature kept: {w:?}");
    }

    #[test]
    fn lasso_large_alpha_kills_everything() {
        let (x, y) = linear_sample(100, 4);
        let mut lasso = LassoRegression::new(1e6);
        lasso.fit(&x, &y);
        assert_eq!(lasso.n_active(), 0);
        // Prediction degenerates to the target mean.
        let mean_y = dbtune_linalg::stats::mean(&y);
        assert!((lasso.predict(&x[0]) - mean_y).abs() < 1e-9);
    }

    #[test]
    fn polynomial_features_expand_and_map_back() {
        let pf = PolynomialFeatures::new(3);
        assert_eq!(pf.output_dim(), 3 + 6);
        let out = pf.transform(&[1.0, 2.0, 3.0]);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 4.0, 6.0, 9.0]);
        assert_eq!(pf.base_features(0), (0, None));
        assert_eq!(pf.base_features(3), (0, None)); // x0²
        assert_eq!(pf.base_features(4), (0, Some(1))); // x0·x1
        assert_eq!(pf.base_features(8), (2, None)); // x2²
    }

    #[test]
    fn soft_threshold_behaviour() {
        assert_eq!(soft_threshold(5.0, 2.0), 3.0);
        assert_eq!(soft_threshold(-5.0, 2.0), -3.0);
        assert_eq!(soft_threshold(1.0, 2.0), 0.0);
    }
}
