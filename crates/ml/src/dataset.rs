//! Dataset helpers: feature-kind descriptors, train/test splitting, and
//! k-fold cross-validation index generation (Table 9 uses 10-fold CV).

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Describes how a feature column should be interpreted by tree learners.
///
/// Continuous columns are split by threshold; categorical columns (encoded
/// as `0.0..k` category indices) are split by subset. The knob catalog in
/// `dbtune-dbsim` maps each knob to one of these.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureKind {
    /// A real-valued or integer-valued column, split by `x <= t`.
    Continuous,
    /// A categorical column with `cardinality` distinct codes `0..k`.
    Categorical {
        /// Number of distinct category codes.
        cardinality: usize,
    },
}

impl FeatureKind {
    /// True when the column is categorical.
    pub fn is_categorical(&self) -> bool {
        matches!(self, FeatureKind::Categorical { .. })
    }
}

/// Splits `n` sample indices into a shuffled `(train, test)` partition with
/// `test_fraction` of the data held out.
pub fn train_test_split(
    n: usize,
    test_fraction: f64,
    rng: &mut impl Rng,
) -> (Vec<usize>, Vec<usize>) {
    assert!((0.0..1.0).contains(&test_fraction));
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let n_test = ((n as f64) * test_fraction).round() as usize;
    let test = idx[..n_test].to_vec();
    let train = idx[n_test..].to_vec();
    (train, test)
}

/// Produces `k` cross-validation folds as `(train_indices, test_indices)`
/// pairs covering all `n` samples exactly once in the test position.
pub fn kfold_indices(n: usize, k: usize, rng: &mut impl Rng) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(n >= k, "more folds than samples");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let lo = f * n / k;
        let hi = (f + 1) * n / k;
        let test = idx[lo..hi].to_vec();
        let mut train = Vec::with_capacity(n - test.len());
        train.extend_from_slice(&idx[..lo]);
        train.extend_from_slice(&idx[hi..]);
        folds.push((train, test));
    }
    folds
}

/// Gathers the rows of `x` (and entries of `y`) selected by `indices`.
pub fn gather(x: &[Vec<f64>], y: &[f64], indices: &[usize]) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs = indices.iter().map(|&i| x[i].clone()).collect();
    let ys = indices.iter().map(|&i| y[i]).collect();
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn split_sizes_add_up() {
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = train_test_split(100, 0.25, &mut rng);
        assert_eq!(train.len(), 75);
        assert_eq!(test.len(), 25);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn kfold_covers_every_index_once() {
        let mut rng = StdRng::seed_from_u64(2);
        let folds = kfold_indices(53, 10, &mut rng);
        assert_eq!(folds.len(), 10);
        let mut seen = vec![0usize; 53];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 53);
            for &t in test {
                seen[t] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn gather_selects_rows() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![10.0, 11.0, 12.0];
        let (xs, ys) = gather(&x, &y, &[2, 0]);
        assert_eq!(xs, vec![vec![2.0], vec![0.0]]);
        assert_eq!(ys, vec![12.0, 10.0]);
    }

    #[test]
    fn feature_kind_predicates() {
        assert!(!FeatureKind::Continuous.is_categorical());
        assert!(FeatureKind::Categorical { cardinality: 3 }.is_categorical());
    }
}
