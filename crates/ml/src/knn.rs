//! k-nearest-neighbour regression with inverse-distance weighting, one of
//! the Table 9 surrogate-model zoo members.

use crate::Regressor;
use dbtune_linalg::matrix::sq_dist;
use dbtune_linalg::stats::Standardizer;

/// KNN regressor; features are standardized before distance computation so
/// wide-range knobs do not dominate.
#[derive(Clone, Debug)]
pub struct KnnRegressor {
    /// Number of neighbours.
    pub k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    standardizer: Option<Standardizer>,
}

impl KnnRegressor {
    /// Creates an unfitted model with `k` neighbours.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self { k, x: Vec::new(), y: Vec::new(), standardizer: None }
    }
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty());
        let st = Standardizer::fit(x);
        self.x = st.transform_all(x);
        self.y = y.to_vec();
        self.standardizer = Some(st);
    }

    fn predict(&self, row: &[f64]) -> f64 {
        let st = self.standardizer.as_ref().expect("predict on unfitted model");
        let z = st.transform(row);
        let k = self.k.min(self.x.len());

        // Partial selection of the k smallest distances.
        let mut dists: Vec<(f64, usize)> =
            self.x.iter().enumerate().map(|(i, xi)| (sq_dist(xi, &z), i)).collect();
        dists.select_nth_unstable_by(k - 1, |a, b| dbtune_linalg::ord::cmp_f64(&a.0, &b.0));
        let neighbours = &dists[..k];

        // Inverse-distance weights; an exact match short-circuits.
        let mut wsum = 0.0;
        let mut acc = 0.0;
        for &(d2, i) in neighbours {
            if d2 < 1e-18 {
                return self.y[i];
            }
            let w = 1.0 / d2.sqrt();
            wsum += w;
            acc += w * self.y[i];
        }
        acc / wsum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_returns_training_target() {
        let x = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        let y = vec![5.0, 7.0, 9.0];
        let mut m = KnnRegressor::new(2);
        m.fit(&x, &y);
        assert_eq!(m.predict(&[1.0, 1.0]), 7.0);
    }

    #[test]
    fn k1_returns_nearest_neighbour() {
        let x = vec![vec![0.0], vec![10.0]];
        let y = vec![1.0, 2.0];
        let mut m = KnnRegressor::new(1);
        m.fit(&x, &y);
        assert_eq!(m.predict(&[2.0]), 1.0);
        assert_eq!(m.predict(&[8.0]), 2.0);
    }

    #[test]
    fn interpolates_between_neighbours() {
        let x = vec![vec![0.0], vec![10.0]];
        let y = vec![0.0, 10.0];
        let mut m = KnnRegressor::new(2);
        m.fit(&x, &y);
        let mid = m.predict(&[5.0]);
        assert!((mid - 5.0).abs() < 1e-9, "midpoint should average equally: {mid}");
    }

    #[test]
    fn k_larger_than_sample_is_clamped() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![2.0, 4.0];
        let mut m = KnnRegressor::new(50);
        m.fit(&x, &y);
        let p = m.predict(&[0.25]);
        assert!(p > 2.0 && p < 4.0);
    }
}
