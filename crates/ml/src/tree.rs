//! CART regression trees with native categorical-split support.
//!
//! This is the workhorse under the random forest (SMAC's surrogate, the Gini
//! importance and fANOVA carriers) and gradient boosting. Numeric features
//! split by threshold; categorical features split by subset, found exactly
//! for squared loss via Breiman's category-mean ordering trick.
//!
//! The node arena (`Vec<Node>` with index links) is public because the
//! fANOVA importance measurement in `dbtune-core` needs to marginalize the
//! tree's piecewise-constant function analytically.

use crate::dataset::FeatureKind;
use crate::Regressor;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How an internal node routes a sample.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SplitRule {
    /// Go left when `row[feature] <= threshold`.
    Numeric {
        /// Column index being tested.
        feature: usize,
        /// Split threshold (midpoint between adjacent training values).
        threshold: f64,
    },
    /// Go left when the category code of `row[feature]` is in `left_mask`.
    ///
    /// Category codes must be `< 64`; the knob catalog never exceeds a
    /// handful of choices per categorical knob.
    Categorical {
        /// Column index being tested.
        feature: usize,
        /// Bitmask of category codes routed to the left child.
        left_mask: u64,
    },
}

impl SplitRule {
    /// The feature column this rule tests.
    pub fn feature(&self) -> usize {
        match self {
            SplitRule::Numeric { feature, .. } | SplitRule::Categorical { feature, .. } => *feature,
        }
    }

    /// Whether `row` is routed to the left child.
    #[inline]
    pub fn goes_left(&self, row: &[f64]) -> bool {
        match *self {
            SplitRule::Numeric { feature, threshold } => row[feature] <= threshold,
            SplitRule::Categorical { feature, left_mask } => {
                let code = row[feature] as i64;
                debug_assert!((0..64).contains(&code), "category code out of range");
                left_mask & (1u64 << code) != 0
            }
        }
    }

    /// [`SplitRule::goes_left`] against column-major training data
    /// (`cols[feature][row_id]`) — the fit hot path reads one column
    /// value instead of chasing the row vector. Same comparison, same
    /// value bits, same verdict.
    #[inline]
    fn goes_left_col(&self, cols: &[Vec<f64>], row_id: usize) -> bool {
        match *self {
            SplitRule::Numeric { feature, threshold } => cols[feature][row_id] <= threshold,
            SplitRule::Categorical { feature, left_mask } => {
                let code = cols[feature][row_id] as i64;
                debug_assert!((0..64).contains(&code), "category code out of range");
                left_mask & (1u64 << code) != 0
            }
        }
    }
}

/// A node in the tree arena.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Node {
    /// Internal decision node.
    Internal {
        /// Routing rule.
        rule: SplitRule,
        /// Arena index of the left child.
        left: usize,
        /// Arena index of the right child.
        right: usize,
    },
    /// Terminal node carrying the mean target of its training samples.
    Leaf {
        /// Prediction value (training-sample mean).
        value: f64,
        /// Number of training samples that reached this leaf.
        n_samples: usize,
    },
}

/// Tuning parameters for a single tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DecisionTreeParams {
    /// Maximum tree depth; `usize::MAX` disables the limit.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples per leaf; splits violating this are rejected.
    pub min_samples_leaf: usize,
    /// Number of candidate features per split; `None` considers all.
    pub max_features: Option<usize>,
}

impl Default for DecisionTreeParams {
    fn default() -> Self {
        Self {
            max_depth: usize::MAX,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
        }
    }
}

/// A fitted CART regression tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DecisionTree {
    params: DecisionTreeParams,
    feature_kinds: Vec<FeatureKind>,
    nodes: Vec<Node>,
    /// Split counts per feature — the raw material of Gini importance.
    split_counts: Vec<usize>,
    root: usize,
}

impl DecisionTree {
    /// Creates an unfitted tree. `feature_kinds` describes each column.
    pub fn new(params: DecisionTreeParams, feature_kinds: Vec<FeatureKind>) -> Self {
        let d = feature_kinds.len();
        Self { params, feature_kinds, nodes: Vec::new(), split_counts: vec![0; d], root: 0 }
    }

    /// Fits using an explicit RNG (used by forests for reproducible feature
    /// subsampling). `sample_indices` selects the training rows.
    ///
    /// Builds a fresh [`FitScratch`] per call; ensemble fitters that
    /// refit many trees over the same design matrix should build one
    /// scratch and call [`DecisionTree::fit_indices_with`] instead —
    /// identical splits, none of the per-tree buffer churn.
    pub fn fit_indices(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        sample_indices: &[usize],
        rng: &mut impl Rng,
    ) {
        let mut scratch = FitScratch::for_design(x, self.feature_kinds.len());
        self.fit_indices_with(&mut scratch, x, y, sample_indices, rng);
    }

    /// [`DecisionTree::fit_indices`] with caller-owned buffers. The
    /// scratch must have been built by [`FitScratch::for_design`] over
    /// this `x` (its column-major copy is reused verbatim — the check
    /// below catches shape drift; keeping the *values* in sync is the
    /// caller's contract). Bit-identical to `fit_indices`: every buffer
    /// is cleared and rebuilt to exactly the state a fresh fit produces,
    /// only the allocations are reused.
    pub fn fit_indices_with(
        &mut self,
        scratch: &mut FitScratch,
        x: &[Vec<f64>],
        y: &[f64],
        sample_indices: &[usize],
        rng: &mut impl Rng,
    ) {
        assert_eq!(x.len(), y.len());
        assert!(!sample_indices.is_empty(), "cannot fit tree on empty sample");
        let d = self.feature_kinds.len();
        assert_eq!(scratch.cols.len(), d, "scratch built for a different feature count");
        assert_eq!(scratch.n_rows, x.len(), "scratch built for a different row count");
        self.nodes.clear();
        self.split_counts.iter_mut().for_each(|c| *c = 0);
        // Presort the sample once per numeric feature; nodes then maintain
        // these lists through order-preserving in-place partitions of
        // their [lo, hi) segment, so split search never sorts again
        // (O(n) scan instead of O(n log n) per node — same splits to the
        // bit, see `best_numeric_split`) and node construction never
        // allocates (all buffers live in the scratch).
        scratch.sorted.resize_with(d, Vec::new);
        for (f, kind) in self.feature_kinds.iter().enumerate() {
            let s = &mut scratch.sorted[f];
            s.clear();
            match kind {
                FeatureKind::Continuous => {
                    s.extend_from_slice(sample_indices);
                    let col = &scratch.cols[f];
                    s.sort_by(|&a, &b| dbtune_linalg::ord::cmp_f64(&col[a], &col[b]));
                }
                FeatureKind::Categorical { .. } => {}
            }
        }
        scratch.idx.clear();
        scratch.idx.extend_from_slice(sample_indices);
        scratch.goes_left.clear();
        scratch.goes_left.resize(x.len(), false);
        let hi = scratch.idx.len();
        self.root = self.build(y, scratch, 0, hi, 0, rng);
    }

    /// The node arena (root at [`DecisionTree::root_index`]).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Arena index of the root node.
    pub fn root_index(&self) -> usize {
        self.root
    }

    /// Number of splits that used each feature (Gini-score numerator).
    pub fn split_counts(&self) -> &[usize] {
        &self.split_counts
    }

    /// The feature descriptors the tree was built with.
    pub fn feature_kinds(&self) -> &[FeatureKind] {
        &self.feature_kinds
    }

    fn build(
        &mut self,
        y: &[f64],
        arena: &mut FitScratch,
        lo: usize,
        hi: usize,
        depth: usize,
        rng: &mut impl Rng,
    ) -> usize {
        let n = hi - lo;
        let mean = arena.idx[lo..hi].iter().map(|&i| y[i]).sum::<f64>() / n as f64;
        let sse: f64 = arena.idx[lo..hi].iter().map(|&i| (y[i] - mean) * (y[i] - mean)).sum();

        let stop =
            depth >= self.params.max_depth || n < self.params.min_samples_split || sse <= 1e-12;
        if !stop {
            if let Some((rule, gain)) = self.best_split(y, arena, lo, hi, rng) {
                if gain > 1e-12 {
                    // Route each row through the rule exactly once; the
                    // cached verdicts then drive every partition below.
                    let mut nl = 0usize;
                    for &i in &arena.idx[lo..hi] {
                        let goes_left = rule.goes_left_col(&arena.cols, i);
                        arena.goes_left[i] = goes_left;
                        nl += usize::from(goes_left);
                    }
                    if nl >= self.params.min_samples_leaf
                        && (n - nl) >= self.params.min_samples_leaf
                    {
                        self.split_counts[rule.feature()] += 1;
                        // Partition this node's segment of every row
                        // list in place, preserving order: an
                        // order-preserving partition of a sorted list
                        // stays sorted (and keeps tie order).
                        let FitScratch { idx, sorted, goes_left, part_scratch, .. } = arena;
                        stable_partition(&mut idx[lo..hi], goes_left, part_scratch);
                        for s in sorted.iter_mut() {
                            if !s.is_empty() {
                                stable_partition(&mut s[lo..hi], goes_left, part_scratch);
                            }
                        }
                        let mid = lo + nl;
                        let l = self.build(y, arena, lo, mid, depth + 1, rng);
                        let r = self.build(y, arena, mid, hi, depth + 1, rng);
                        self.nodes.push(Node::Internal { rule, left: l, right: r });
                        return self.nodes.len() - 1;
                    }
                }
            }
        }
        self.nodes.push(Node::Leaf { value: mean, n_samples: n });
        self.nodes.len() - 1
    }

    /// Finds the best split over a (possibly subsampled) feature set,
    /// returning the rule and its SSE reduction.
    fn best_split(
        &self,
        y: &[f64],
        arena: &mut FitScratch,
        lo: usize,
        hi: usize,
        rng: &mut impl Rng,
    ) -> Option<(SplitRule, f64)> {
        let FitScratch { cols, idx, sorted, feat_scratch, split_scratch, cat, .. } = arena;
        let idx = &idx[lo..hi];
        let d = self.feature_kinds.len();
        feat_scratch.clear();
        feat_scratch.extend(0..d);
        if let Some(k) = self.params.max_features {
            if k < d {
                feat_scratch.shuffle(rng);
                feat_scratch.truncate(k);
            }
        }

        let n = idx.len() as f64;
        let sum: f64 = idx.iter().map(|&i| y[i]).sum();
        let sum_sq: f64 = idx.iter().map(|&i| y[i] * y[i]).sum();
        let parent_sse = sum_sq - sum * sum / n;

        let mut best: Option<(SplitRule, f64)> = None;
        for &f in feat_scratch.iter() {
            let candidate = match self.feature_kinds[f] {
                FeatureKind::Continuous => best_numeric_split(
                    &cols[f],
                    y,
                    &sorted[f][lo..hi],
                    f,
                    self.params.min_samples_leaf,
                    split_scratch,
                ),
                FeatureKind::Categorical { cardinality } => best_categorical_split(
                    &cols[f],
                    y,
                    idx,
                    f,
                    cardinality,
                    self.params.min_samples_leaf,
                    cat,
                ),
            };
            if let Some((rule, child_sse)) = candidate {
                let gain = parent_sse - child_sse;
                if best.as_ref().is_none_or(|(_, g)| gain > *g) {
                    best = Some((rule, gain));
                }
            }
        }
        best
    }
}

/// Reusable working set for the segment-based build — the fix for the
/// worst allocation-churn site the memory profiler found (an ensemble
/// refit rebuilt every one of these buffers, including the column-major
/// copy of an unchanged design matrix, once per tree). Build one with
/// [`FitScratch::for_design`] and pass it to
/// [`DecisionTree::fit_indices_with`] for every tree over that matrix.
///
/// A node is the range `[lo, hi)` of every row list: `idx` holds the
/// node's member rows in parent order, and `sorted` holds one list per
/// numeric feature kept sorted by feature value (empty for categorical
/// features). Splitting a node stably partitions each list's segment in
/// place, so no buffer is ever allocated per node.
///
/// Stability argument: an order-preserving partition of a stably sorted
/// sequence equals the stable sort of the partitioned sequence, and a
/// node's segment is itself an order-preserving partition of the fit
/// sample — so each sorted segment is exactly what sorting the node's
/// `(value, y)` pairs used to produce, ties included. Rows duplicated
/// by bootstrap sampling are no exception: duplicates share a value and
/// always route to the same child.
pub struct FitScratch {
    /// Column-major training values (`cols[feature][row_id]`), copied
    /// once per design matrix so split search and routing read dense
    /// columns. Values are copied verbatim — identical bits, identical
    /// splits.
    cols: Vec<Vec<f64>>,
    /// Row count `cols` was built from (shape check in `fit_indices_with`).
    n_rows: usize,
    idx: Vec<usize>,
    sorted: Vec<Vec<usize>>,
    /// Per-row routing verdict for the split currently being applied,
    /// indexed by original row id (bootstrap duplicates agree).
    goes_left: Vec<bool>,
    /// Spill buffer for [`stable_partition`].
    part_scratch: Vec<usize>,
    /// Feature-subsample buffer for `best_split`.
    feat_scratch: Vec<usize>,
    /// `(value, target)` gather buffer for [`best_numeric_split`].
    split_scratch: Vec<(f64, f64)>,
    /// Per-category accumulators for [`best_categorical_split`].
    cat: CatScratch,
}

impl FitScratch {
    /// Builds the scratch for a design matrix: the column-major copy is
    /// made here, once, and shared by every subsequent fit over `x`.
    pub fn for_design(x: &[Vec<f64>], d: usize) -> Self {
        Self {
            cols: (0..d).map(|f| x.iter().map(|row| row[f]).collect()).collect(),
            n_rows: x.len(),
            idx: Vec::with_capacity(x.len()),
            sorted: Vec::new(),
            goes_left: Vec::with_capacity(x.len()),
            part_scratch: Vec::with_capacity(x.len()),
            feat_scratch: Vec::with_capacity(d),
            split_scratch: Vec::new(),
            cat: CatScratch::default(),
        }
    }
}

/// Per-node accumulators for [`best_categorical_split`], hoisted out of
/// the node loop (five fresh vectors per categorical feature per node
/// was the second-worst churn source in a forest refit).
#[derive(Default)]
struct CatScratch {
    count: Vec<usize>,
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
    present: Vec<usize>,
    ordered: Vec<usize>,
}

/// Stably partitions `seg` so rows with `goes_left[row] == true` come
/// first, each side in original order. Two passes over a spill copy —
/// O(n), allocation-free once `scratch` has warmed up.
fn stable_partition(seg: &mut [usize], goes_left: &[bool], scratch: &mut Vec<usize>) {
    scratch.clear();
    scratch.extend_from_slice(seg);
    let mut w = 0;
    for &i in scratch.iter() {
        if goes_left[i] {
            seg[w] = i;
            w += 1;
        }
    }
    for &i in scratch.iter() {
        if !goes_left[i] {
            seg[w] = i;
            w += 1;
        }
    }
}

/// Exact best threshold split on a numeric feature by prefix scan over
/// `sorted_rows`, the node's rows presorted by this feature (see
/// [`BuildArena`]). Gathers `(value, y)` pairs from the feature's dense
/// column into `scratch` in sorted order — bit-identical to the
/// historical sort-per-node implementation
/// (`best_numeric_split_reference` under test) at O(n) instead of
/// O(n log n).
fn best_numeric_split(
    col: &[f64],
    y: &[f64],
    sorted_rows: &[usize],
    feature: usize,
    min_leaf: usize,
    scratch: &mut Vec<(f64, f64)>,
) -> Option<(SplitRule, f64)> {
    scratch.clear();
    scratch.extend(sorted_rows.iter().map(|&i| (col[i], y[i])));
    let pairs: &[(f64, f64)] = scratch;
    let n = pairs.len();
    if pairs[0].0 == pairs[n - 1].0 {
        return None; // constant feature
    }
    let total: f64 = pairs.iter().map(|p| p.1).sum();
    let total_sq: f64 = pairs.iter().map(|p| p.1 * p.1).sum();

    let mut left_sum = 0.0;
    let mut left_sq = 0.0;
    let mut best: Option<(f64, f64)> = None; // (threshold, child_sse)
    for i in 0..n - 1 {
        left_sum += pairs[i].1;
        left_sq += pairs[i].1 * pairs[i].1;
        if pairs[i].0 == pairs[i + 1].0 {
            continue; // cannot split between equal values
        }
        let nl = (i + 1) as f64;
        let nr = (n - i - 1) as f64;
        if (i + 1) < min_leaf || (n - i - 1) < min_leaf {
            continue;
        }
        let sse_l = left_sq - left_sum * left_sum / nl;
        let sse_r = (total_sq - left_sq) - (total - left_sum) * (total - left_sum) / nr;
        let child = sse_l + sse_r;
        if best.is_none_or(|(_, b)| child < b) {
            best = Some((0.5 * (pairs[i].0 + pairs[i + 1].0), child));
        }
    }
    best.map(|(threshold, sse)| (SplitRule::Numeric { feature, threshold }, sse))
}

/// The historical sort-per-node numeric split search, kept verbatim as
/// the oracle for the presort fast path's equivalence proptest.
#[cfg(test)]
fn best_numeric_split_reference(
    x: &[Vec<f64>],
    y: &[f64],
    idx: &[usize],
    feature: usize,
    min_leaf: usize,
) -> Option<(SplitRule, f64)> {
    let mut pairs: Vec<(f64, f64)> = idx.iter().map(|&i| (x[i][feature], y[i])).collect();
    pairs.sort_by(|a, b| dbtune_linalg::ord::cmp_f64(&a.0, &b.0));
    let n = pairs.len();
    if pairs[0].0 == pairs[n - 1].0 {
        return None; // constant feature
    }
    let total: f64 = pairs.iter().map(|p| p.1).sum();
    let total_sq: f64 = pairs.iter().map(|p| p.1 * p.1).sum();

    let mut left_sum = 0.0;
    let mut left_sq = 0.0;
    let mut best: Option<(f64, f64)> = None; // (threshold, child_sse)
    for i in 0..n - 1 {
        left_sum += pairs[i].1;
        left_sq += pairs[i].1 * pairs[i].1;
        if pairs[i].0 == pairs[i + 1].0 {
            continue; // cannot split between equal values
        }
        let nl = (i + 1) as f64;
        let nr = (n - i - 1) as f64;
        if (i + 1) < min_leaf || (n - i - 1) < min_leaf {
            continue;
        }
        let sse_l = left_sq - left_sum * left_sum / nl;
        let sse_r = (total_sq - left_sq) - (total - left_sum) * (total - left_sum) / nr;
        let child = sse_l + sse_r;
        if best.is_none_or(|(_, b)| child < b) {
            best = Some((0.5 * (pairs[i].0 + pairs[i + 1].0), child));
        }
    }
    best.map(|(threshold, sse)| (SplitRule::Numeric { feature, threshold }, sse))
}

/// Exact best subset split on a categorical feature.
///
/// (Index loops mirror the prefix-scan math.)
///
/// For squared loss the optimal subset respects the ordering of category
/// target means (Breiman et al., 1984), so we sort categories by mean and
/// scan as if numeric.
#[allow(clippy::needless_range_loop)]
fn best_categorical_split(
    col: &[f64],
    y: &[f64],
    idx: &[usize],
    feature: usize,
    cardinality: usize,
    min_leaf: usize,
    scratch: &mut CatScratch,
) -> Option<(SplitRule, f64)> {
    assert!(cardinality <= 64, "categorical cardinality above bitmask capacity");
    let CatScratch { count, sum, sum_sq, present, ordered } = scratch;
    count.clear();
    count.resize(cardinality, 0);
    sum.clear();
    sum.resize(cardinality, 0.0);
    sum_sq.clear();
    sum_sq.resize(cardinality, 0.0);
    for &i in idx {
        let c = col[i] as usize;
        debug_assert!(c < cardinality, "category code {c} >= cardinality {cardinality}");
        count[c] += 1;
        sum[c] += y[i];
        sum_sq[c] += y[i] * y[i];
    }
    present.clear();
    present.extend((0..cardinality).filter(|&c| count[c] > 0));
    if present.len() < 2 {
        return None;
    }
    ordered.clear();
    ordered.extend_from_slice(present);
    ordered.sort_by(|&a, &b| {
        let ma = sum[a] / count[a] as f64;
        let mb = sum[b] / count[b] as f64;
        dbtune_linalg::ord::cmp_f64(&ma, &mb)
    });

    let total_n: usize = ordered.iter().map(|&c| count[c]).sum();
    let total_sum: f64 = ordered.iter().map(|&c| sum[c]).sum();
    let total_sq: f64 = ordered.iter().map(|&c| sum_sq[c]).sum();

    let mut left_n = 0usize;
    let mut left_sum = 0.0;
    let mut left_sq = 0.0;
    let mut best: Option<(u64, f64)> = None;
    let mut mask = 0u64;
    for w in 0..ordered.len() - 1 {
        let c = ordered[w];
        left_n += count[c];
        left_sum += sum[c];
        left_sq += sum_sq[c];
        mask |= 1u64 << c;
        let right_n = total_n - left_n;
        if left_n < min_leaf || right_n < min_leaf {
            continue;
        }
        let sse_l = left_sq - left_sum * left_sum / left_n as f64;
        let sse_r =
            (total_sq - left_sq) - (total_sum - left_sum) * (total_sum - left_sum) / right_n as f64;
        let child = sse_l + sse_r;
        if best.is_none_or(|(_, b)| child < b) {
            best = Some((mask, child));
        }
    }
    best.map(|(left_mask, sse)| (SplitRule::Categorical { feature, left_mask }, sse))
}

impl Regressor for DecisionTree {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        let idx: Vec<usize> = (0..x.len()).collect();
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        self.fit_indices(x, y, &idx, &mut rng);
    }

    fn predict(&self, row: &[f64]) -> f64 {
        assert!(!self.nodes.is_empty(), "predict on unfitted tree");
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value, .. } => return *value,
                Node::Internal { rule, left, right } => {
                    node = if rule.goes_left(row) { *left } else { *right };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit_tree(x: &[Vec<f64>], y: &[f64], kinds: Vec<FeatureKind>) -> DecisionTree {
        let mut t = DecisionTree::new(DecisionTreeParams::default(), kinds);
        t.fit(x, y);
        t
    }

    #[test]
    fn perfectly_separable_numeric_data() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let t = fit_tree(&x, &y, vec![FeatureKind::Continuous]);
        assert_eq!(t.predict(&[3.0]), 1.0);
        assert_eq!(t.predict(&[15.0]), 5.0);
    }

    #[test]
    fn interpolates_training_points_without_depth_limit() {
        let x: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64, (i * 7 % 16) as f64]).collect();
        let y: Vec<f64> = (0..16).map(|i| (i as f64).sin() * 10.0).collect();
        let t = fit_tree(&x, &y, vec![FeatureKind::Continuous; 2]);
        for (xi, yi) in x.iter().zip(&y) {
            assert!((t.predict(xi) - yi).abs() < 1e-9);
        }
    }

    #[test]
    fn categorical_split_is_found() {
        // Category {0,2} -> low, {1,3} -> high. A threshold split cannot
        // separate these; a subset split can.
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 4) as f64]).collect();
        let y: Vec<f64> =
            (0..40).map(|i| if i % 4 == 0 || i % 4 == 2 { 0.0 } else { 10.0 }).collect();
        let t = fit_tree(&x, &y, vec![FeatureKind::Categorical { cardinality: 4 }]);
        assert_eq!(t.predict(&[0.0]), 0.0);
        assert_eq!(t.predict(&[2.0]), 0.0);
        assert_eq!(t.predict(&[1.0]), 10.0);
        assert_eq!(t.predict(&[3.0]), 10.0);
        // The root should be a single categorical split: exactly one split
        // (depth 1) suffices.
        assert_eq!(t.split_counts()[0], 1);
    }

    #[test]
    fn split_counts_track_used_features() {
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![i as f64, 0.0]) // second feature constant
            .collect();
        let y: Vec<f64> = (0..30).map(|i| i as f64 * 2.0).collect();
        let t = fit_tree(&x, &y, vec![FeatureKind::Continuous; 2]);
        assert!(t.split_counts()[0] > 0);
        assert_eq!(t.split_counts()[1], 0);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let params = DecisionTreeParams { min_samples_leaf: 4, ..Default::default() };
        let mut t = DecisionTree::new(params, vec![FeatureKind::Continuous]);
        t.fit(&x, &y);
        for node in t.nodes() {
            if let Node::Leaf { n_samples, .. } = node {
                assert!(*n_samples >= 4);
            }
        }
    }

    #[test]
    fn max_depth_zero_gives_mean_stump() {
        let x: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let params = DecisionTreeParams { max_depth: 0, ..Default::default() };
        let mut t = DecisionTree::new(params, vec![FeatureKind::Continuous]);
        t.fit(&x, &y);
        assert!((t.predict(&[0.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let y = vec![3.0; 8];
        let t = fit_tree(&x, &y, vec![FeatureKind::Continuous]);
        assert_eq!(t.nodes().len(), 1);
        assert_eq!(t.predict(&[100.0]), 3.0);
    }

    /// Runs the fast path the way `build` does: presort the node's rows
    /// stably by feature value, then gather-and-scan.
    fn fast_split(
        x: &[Vec<f64>],
        y: &[f64],
        idx: &[usize],
        feature: usize,
        min_leaf: usize,
    ) -> Option<(SplitRule, f64)> {
        let col: Vec<f64> = x.iter().map(|row| row[feature]).collect();
        let mut sorted = idx.to_vec();
        sorted.sort_by(|&a, &b| dbtune_linalg::ord::cmp_f64(&col[a], &col[b]));
        let mut scratch = Vec::new();
        best_numeric_split(&col, y, &sorted, feature, min_leaf, &mut scratch)
    }

    fn assert_split_eq(a: Option<(SplitRule, f64)>, b: Option<(SplitRule, f64)>, context: &str) {
        match (a, b) {
            (None, None) => {}
            (Some((ra, sa)), Some((rb, sb))) => {
                assert_eq!(ra, rb, "rule mismatch: {context}");
                assert_eq!(sa.to_bits(), sb.to_bits(), "SSE bits mismatch: {context}");
            }
            (a, b) => panic!("split presence mismatch ({context}): {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn presorted_split_matches_reference_with_ties_and_duplicates() {
        // Heavy value ties plus bootstrap-style duplicate indices — the
        // cases where a stability bug would change the chosen threshold.
        let x: Vec<Vec<f64>> = (0..24).map(|i| vec![(i % 6) as f64, (i % 4) as f64]).collect();
        let y: Vec<f64> = (0..24).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        let idx: Vec<usize> = (0..24).chain([3, 3, 17, 8, 8, 8]).collect();
        for feature in 0..2 {
            for min_leaf in [1, 3, 8] {
                let r = best_numeric_split_reference(&x, &y, &idx, feature, min_leaf);
                let f = fast_split(&x, &y, &idx, feature, min_leaf);
                assert_split_eq(r, f, &format!("feature {feature}, min_leaf {min_leaf}"));
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// The presort fast path returns the same rule and the same SSE
        /// bits as the historical sort-per-node search, on arbitrary data
        /// (quantized to force ties) and arbitrary row multisets.
        #[test]
        fn presorted_split_equals_reference(
            vals in proptest::collection::vec((0u32..8, -100i32..100), 2..60),
            picks in proptest::collection::vec(0usize..60, 2..80),
            min_leaf in 1usize..5,
        ) {
            let x: Vec<Vec<f64>> = vals.iter().map(|(v, _)| vec![*v as f64 / 4.0]).collect();
            let y: Vec<f64> = vals.iter().map(|(_, t)| *t as f64 / 10.0).collect();
            let idx: Vec<usize> = picks.iter().map(|&p| p % x.len()).collect();
            let r = best_numeric_split_reference(&x, &y, &idx, 0, min_leaf);
            let f = fast_split(&x, &y, &idx, 0, min_leaf);
            assert_split_eq(r, f, "proptest case");
        }
    }

    #[test]
    fn split_rule_routing() {
        let num = SplitRule::Numeric { feature: 0, threshold: 1.5 };
        assert!(num.goes_left(&[1.0]));
        assert!(!num.goes_left(&[2.0]));
        let cat = SplitRule::Categorical { feature: 0, left_mask: 0b101 };
        assert!(cat.goes_left(&[0.0]));
        assert!(!cat.goes_left(&[1.0]));
        assert!(cat.goes_left(&[2.0]));
    }
}
