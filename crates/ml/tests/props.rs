//! Property-based tests for the learners: prediction bounds, determinism,
//! and interface invariants that hold for arbitrary data.

use dbtune_ml::{
    DecisionTree, DecisionTreeParams, FeatureKind, GradientBoosting, GradientBoostingParams,
    KnnRegressor, RandomForest, RandomForestParams, Regressor, UncertainRegressor,
};
use proptest::prelude::*;

/// Strategy: a small regression dataset with d continuous features.
fn dataset(d: usize) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    proptest::collection::vec(
        (proptest::collection::vec(-10.0f64..10.0, d), -100.0f64..100.0),
        4..40,
    )
    .prop_map(|rows| rows.into_iter().unzip())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_predictions_stay_within_target_range((x, y) in dataset(3)) {
        let mut t = DecisionTree::new(DecisionTreeParams::default(), vec![FeatureKind::Continuous; 3]);
        t.fit(&x, &y);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for row in &x {
            let p = t.predict(row);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
        // Probe points outside the training range too: leaves are means,
        // so predictions can never leave the target hull.
        let p = t.predict(&[1e6, -1e6, 0.0]);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    #[test]
    fn forest_mean_is_within_target_hull_and_variance_nonnegative((x, y) in dataset(2)) {
        let mut rf = RandomForest::continuous(
            RandomForestParams { n_trees: 10, ..Default::default() },
            2,
        );
        rf.fit(&x, &y);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for row in x.iter().take(10) {
            let (m, v) = rf.predict_with_variance(row);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
            prop_assert!(v >= 0.0);
        }
    }

    #[test]
    fn forest_is_deterministic_under_fixed_seed((x, y) in dataset(2)) {
        let fit = || {
            let mut rf = RandomForest::continuous(
                RandomForestParams { n_trees: 6, seed: 9, ..Default::default() },
                2,
            );
            rf.fit(&x, &y);
            rf.predict(&x[0])
        };
        prop_assert_eq!(fit(), fit());
    }

    #[test]
    fn gbdt_training_error_not_worse_than_mean_model((x, y) in dataset(2)) {
        let mut gb = GradientBoosting::continuous(
            GradientBoostingParams { n_stages: 30, ..Default::default() },
            2,
        );
        gb.fit(&x, &y);
        let mean = dbtune_linalg::stats::mean(&y);
        let mean_rmse = dbtune_linalg::stats::rmse(&vec![mean; y.len()], &y);
        let gb_rmse = dbtune_linalg::stats::rmse(&gb.predict_batch(&x), &y);
        prop_assert!(gb_rmse <= mean_rmse + 1e-9);
    }

    #[test]
    fn knn_prediction_is_a_convex_combination((x, y) in dataset(2), k in 1usize..6) {
        let mut m = KnnRegressor::new(k);
        m.fit(&x, &y);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = m.predict(&[0.0, 0.0]);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    #[test]
    fn split_counts_bounded_by_node_count((x, y) in dataset(3)) {
        let mut t = DecisionTree::new(DecisionTreeParams::default(), vec![FeatureKind::Continuous; 3]);
        t.fit(&x, &y);
        let total_splits: usize = t.split_counts().iter().sum();
        // A binary tree with L leaves has L−1 internal nodes (splits).
        let leaves = t.nodes().iter().filter(|n| matches!(n, dbtune_ml::Node::Leaf { .. })).count();
        prop_assert_eq!(total_splits, leaves - 1);
    }
}
