//! Behavioural tests of the response surface: the workload-dependent knob
//! sensitivities the knob-selection experiments rely on.

use dbtune_dbsim::{DbSimulator, Hardware, Workload};

/// Relative change of the noise-free metric when setting one knob,
/// in maximize orientation (positive = better).
fn gain(sim: &DbSimulator, knob: &str, value: f64) -> f64 {
    let i = sim.catalog().expect_index(knob);
    let mut cfg = sim.default_config().to_vec();
    cfg[i] = value;
    let v = sim.expected_value(&cfg).expect("no crash");
    let d = sim.expected_value(sim.default_config()).expect("no crash");
    match sim.objective() {
        dbtune_dbsim::Objective::Throughput => v / d - 1.0,
        dbtune_dbsim::Objective::Latency95 => d / v - 1.0,
    }
}

#[test]
fn durability_relaxation_scales_with_write_intensity() {
    // flush_log_at_trx_commit = 0 helps write-heavy workloads most.
    let tpcc = DbSimulator::new(Workload::Tpcc, Hardware::B, 1);
    let twitter = DbSimulator::new(Workload::Twitter, Hardware::B, 1);
    let job = DbSimulator::new(Workload::Job, Hardware::B, 1);
    let g_tpcc = gain(&tpcc, "innodb_flush_log_at_trx_commit", 0.0);
    let g_twitter = gain(&twitter, "innodb_flush_log_at_trx_commit", 0.0);
    let g_job = gain(&job, "innodb_flush_log_at_trx_commit", 0.0);
    assert!(g_tpcc > g_twitter, "TPC-C (92% writes) should gain more: {g_tpcc} vs {g_twitter}");
    assert!(g_twitter > g_job, "Twitter should gain more than read-only JOB");
    assert!(g_job < 0.02, "JOB barely writes: {g_job}");
}

#[test]
fn scan_buffers_matter_for_analytics_not_point_lookups() {
    let job = DbSimulator::new(Workload::Job, Hardware::B, 2);
    let tatp = DbSimulator::new(Workload::Tatp, Hardware::B, 2);
    let g_job = gain(&job, "sort_buffer_size", 16_384.0);
    let g_tatp = gain(&tatp, "sort_buffer_size", 16_384.0);
    assert!(g_job > 0.05, "JOB should benefit from big sort buffers: {g_job}");
    assert!(g_tatp < g_job / 2.0, "TATP point lookups barely sort: {g_tatp}");
}

#[test]
fn query_cache_helps_repeat_readers_and_hurts_writers() {
    let twitter = DbSimulator::new(Workload::Twitter, Hardware::B, 3);
    let voter = DbSimulator::new(Workload::Voter, Hardware::B, 3);
    let set_qc = |sim: &DbSimulator| {
        let t = sim.catalog().expect_index("query_cache_type");
        let s = sim.catalog().expect_index("query_cache_size");
        let mut cfg = sim.default_config().to_vec();
        cfg[t] = 1.0;
        cfg[s] = 512.0;
        let v = sim.expected_value(&cfg).expect("no crash");
        let d = sim.expected_value(sim.default_config()).expect("no crash");
        v / d - 1.0
    };
    assert!(set_qc(&twitter) > 0.02, "repeat-read Twitter should gain");
    assert!(set_qc(&voter) < 0.0, "pure-write Voter should lose");
}

#[test]
fn concurrency_peak_tracks_core_count() {
    // Find the best thread_concurrency per instance by scanning; the
    // optimum should grow with cores.
    let best_threads = |hw: Hardware| -> f64 {
        let sim = DbSimulator::new(Workload::Tpcc, hw, 4);
        let i = sim.catalog().expect_index("innodb_thread_concurrency");
        let mut best = (f64::NEG_INFINITY, 0.0);
        for t in (2..=256).step_by(2) {
            let mut cfg = sim.default_config().to_vec();
            cfg[i] = t as f64;
            let v = sim.expected_value(&cfg).expect("no crash");
            if v > best.0 {
                best = (v, t as f64);
            }
        }
        best.1
    };
    let a = best_threads(Hardware::A);
    let d = best_threads(Hardware::D);
    assert!(a < d, "optimal concurrency must grow with cores: A={a} D={d}");
    assert!((6.0..=16.0).contains(&a), "A (4 cores) optimum near 8: {a}");
    assert!((48.0..=128.0).contains(&d), "D (32 cores) optimum near 64: {d}");
}

#[test]
fn trap_knobs_have_zero_tunability_everywhere() {
    for wl in Workload::ALL {
        let sim = DbSimulator::new(wl, Hardware::B, 5);
        for (knob, probes) in [
            ("innodb_lru_scan_depth", vec![100.0, 16_384.0]),
            ("innodb_spin_wait_delay", vec![0.0, 200.0]),
            ("innodb_old_blocks_pct", vec![5.0, 95.0]),
        ] {
            for p in probes {
                let g = gain(&sim, knob, p);
                assert!(
                    g <= 1e-9,
                    "{}: moving trap {knob} to {p} should never help (got {g})",
                    wl.name()
                );
            }
        }
    }
}

#[test]
fn metrics_distinguish_configurations_not_just_workloads() {
    let mut sim = DbSimulator::new(Workload::Sysbench, Hardware::B, 6);
    let cfg_a = sim.default_config().to_vec();
    let mut cfg_b = cfg_a.clone();
    cfg_b[sim.catalog().expect_index("innodb_buffer_pool_size")] = 1024.0;
    cfg_b[sim.catalog().expect_index("innodb_thread_concurrency")] = 256.0;
    let ma = sim.evaluate(&cfg_a).metrics;
    let mb = sim.evaluate(&cfg_b).metrics;
    let dist: f64 = ma.iter().zip(&mb).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
    assert!(dist > 0.2, "metrics should respond to configuration changes: {dist}");
}

#[test]
fn swap_thrash_boundary_scales_with_instance_memory() {
    // The same buffer-pool size can be a thrashing overcommit on a small
    // instance and a harmless setting on a large one.
    let probe = |hw: Hardware, bp_mb: f64| -> f64 {
        let sim = DbSimulator::new(Workload::Seats, hw, 7);
        let i = sim.catalog().expect_index("innodb_buffer_pool_size");
        let mut cfg = sim.default_config().to_vec();
        cfg[i] = bp_mb;
        let v = sim.expected_value(&cfg).expect("below the OOM threshold");
        let d = sim.expected_value(sim.default_config()).expect("no crash");
        v / d
    };
    // 12 GB on an 8 GB instance: deep in the swap-thrash zone.
    assert!(probe(Hardware::A, 12_288.0) < 0.7, "A should thrash on a 12G pool");
    // 44 GB on a 64 GB instance: comfortably below the 85% boundary and
    // above D's default, so at worst a mild change.
    assert!(probe(Hardware::D, 45_056.0) > 0.9, "D should shrug off a 44G pool");
    // 62 GB on the same instance: past the boundary, clearly degraded.
    assert!(
        probe(Hardware::D, 63_488.0) < probe(Hardware::D, 45_056.0),
        "D must eventually thrash too"
    );
}
