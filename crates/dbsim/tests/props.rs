//! Property-based tests for the simulator: any legal configuration either
//! evaluates to a finite positive metric or fails cleanly, defaults never
//! crash, and the knob-domain encodings round-trip.

use dbtune_dbsim::knob::Domain;
use dbtune_dbsim::{DbSimulator, Hardware, KnobCatalog, Workload};
use proptest::prelude::*;

/// Strategy: a legal random configuration as unit-cube coordinates,
/// decoded through each knob's domain.
fn unit_config() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..=1.0, 197)
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    prop::sample::select(Workload::ALL.to_vec())
}

fn hardware_strategy() -> impl Strategy<Value = Hardware> {
    prop::sample::select(Hardware::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_legal_config_evaluates_cleanly(units in unit_config(),
                                          wl in workload_strategy(),
                                          hw in hardware_strategy()) {
        let mut sim = DbSimulator::new(wl, hw, 7);
        let catalog = sim.catalog().clone();
        let cfg: Vec<f64> = units
            .iter()
            .zip(catalog.specs())
            .map(|(u, s)| s.domain.from_unit(*u))
            .collect();
        let out = sim.evaluate(&cfg);
        if out.failed {
            prop_assert!(out.value.is_nan());
        } else {
            prop_assert!(out.value.is_finite() && out.value > 0.0);
            prop_assert_eq!(out.metrics.len(), dbtune_dbsim::METRICS_DIM);
            prop_assert!(out.metrics.iter().all(|m| m.is_finite()));
        }
    }

    #[test]
    fn default_config_never_crashes(wl in workload_strategy(), hw in hardware_strategy()) {
        let mut sim = DbSimulator::new(wl, hw, 11);
        let cfg = sim.default_config().to_vec();
        let out = sim.evaluate(&cfg);
        prop_assert!(!out.failed);
        prop_assert!(sim.expected_value(&cfg).is_some());
    }

    #[test]
    fn domain_unit_round_trip(u in 0.0f64..=1.0) {
        let catalog = KnobCatalog::mysql57();
        for spec in catalog.specs().iter().take(60) {
            let raw = spec.domain.from_unit(u);
            // Decoded values are always legal…
            prop_assert_eq!(spec.domain.clamp(raw), raw, "illegal decode for {}", spec.name);
            // …and re-encoding then re-decoding is a fixpoint.
            let again = spec.domain.from_unit(spec.domain.to_unit(raw));
            prop_assert_eq!(again, raw, "encode/decode not idempotent for {}", spec.name);
        }
    }

    #[test]
    fn clamp_is_idempotent_and_legalizing(values in proptest::collection::vec(-1e9f64..1e9, 197)) {
        let catalog = KnobCatalog::mysql57();
        let mut cfg = values;
        catalog.clamp_config(&mut cfg);
        let once = cfg.clone();
        catalog.clamp_config(&mut cfg);
        prop_assert_eq!(&once, &cfg);
        for (v, s) in cfg.iter().zip(catalog.specs()) {
            prop_assert_eq!(s.domain.clamp(*v), *v);
        }
        if let Domain::Cat { choices } = &catalog.specs()[0].domain {
            prop_assert!(cfg[0] < choices.len() as f64);
        }
    }

    #[test]
    fn noise_free_evaluation_is_deterministic(units in unit_config()) {
        let sim = DbSimulator::new(Workload::Tatp, Hardware::B, 3);
        let catalog = sim.catalog().clone();
        let cfg: Vec<f64> = units
            .iter()
            .zip(catalog.specs())
            .map(|(u, s)| s.domain.from_unit(*u))
            .collect();
        prop_assert_eq!(sim.expected_value(&cfg), sim.expected_value(&cfg));
    }
}
