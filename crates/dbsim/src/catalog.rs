//! The 197-knob configuration catalog mirroring MySQL 5.7.
//!
//! §5.1 of the paper: "There are 197 configuration knobs in MySQL 5.7,
//! except the knobs that do not make sense to tune (e.g., path names)."
//! The catalog contains ~40 knobs with modelled performance semantics (the
//! simulator resolves them by name) and a long tail of real MySQL 5.7
//! variable names whose effect on the simulated response surface is
//! negligible — exactly the needle-in-a-haystack structure knob selection
//! must cope with.
//!
//! Size-valued knobs use explicit units in their modelled semantics:
//! `*_size` knobs named below are in **MB** or **KB** as documented on each
//! entry (the simulator reads them accordingly).

use crate::hardware::Hardware;
use crate::knob::KnobSpec;
use std::collections::BTreeMap;

/// The full knob catalog with name-based lookup.
///
/// The name index is a `BTreeMap` so any traversal of it (diagnostics,
/// serialization, future iteration) is in sorted name order by
/// construction — the D1 lint bans unordered-map iteration outside the
/// telemetry crates.
#[derive(Clone, Debug)]
pub struct KnobCatalog {
    specs: Vec<KnobSpec>,
    by_name: BTreeMap<&'static str, usize>,
}

/// Number of knobs in the catalog (matches MySQL 5.7 per §5.1).
pub const N_KNOBS: usize = 197;

impl KnobCatalog {
    /// Builds the MySQL 5.7 catalog.
    pub fn mysql57() -> Self {
        let mut specs = semantic_knobs();
        specs.extend(filler_knobs());
        let by_name = specs.iter().enumerate().map(|(i, s)| (s.name, i)).collect();
        let cat = Self { specs, by_name };
        debug_assert_eq!(cat.len(), N_KNOBS, "catalog size drifted from 197");
        cat
    }

    /// Number of knobs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the catalog is empty (never, for the stock catalog).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// All knob specifications, in catalog order.
    pub fn specs(&self) -> &[KnobSpec] {
        &self.specs
    }

    /// Looks a knob up by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Looks a knob up by name, panicking with the name on failure
    /// (internal wiring errors should be loud).
    pub fn expect_index(&self, name: &str) -> usize {
        self.index_of(name).unwrap_or_else(|| panic!("knob `{name}` missing from catalog"))
    }

    /// The knob spec at `idx`.
    pub fn spec(&self, idx: usize) -> &KnobSpec {
        &self.specs[idx]
    }

    /// The default configuration for a hardware instance.
    ///
    /// Matches the paper's setup (§4.1): stock MySQL defaults except the
    /// buffer pool, which is set to 60% of instance memory.
    pub fn default_config(&self, hw: Hardware) -> Vec<f64> {
        let mut cfg: Vec<f64> = self.specs.iter().map(|s| s.default).collect();
        let bp = self.expect_index("innodb_buffer_pool_size");
        cfg[bp] = self.specs[bp].domain.clamp(hw.ram_mb() * 0.6);
        cfg
    }

    /// Clamps every entry of a raw configuration into its domain.
    pub fn clamp_config(&self, cfg: &mut [f64]) {
        assert_eq!(cfg.len(), self.specs.len());
        for (v, s) in cfg.iter_mut().zip(&self.specs) {
            *v = s.domain.clamp(*v);
        }
    }

    /// Knob names in sorted order (deterministic traversal of the index).
    pub fn names_sorted(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.by_name.keys().copied()
    }

    /// Indices of all categorical knobs.
    pub fn categorical_indices(&self) -> Vec<usize> {
        self.specs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.domain.is_categorical())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of all integer knobs.
    pub fn integer_indices(&self) -> Vec<usize> {
        self.specs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.domain.is_integer())
            .map(|(i, _)| i)
            .collect()
    }
}

impl Default for KnobCatalog {
    fn default() -> Self {
        Self::mysql57()
    }
}

/// Knobs with modelled performance semantics. The simulator resolves these
/// by name; renaming any of them is a compile-visible change only if the
/// `sim::Idx` wiring test is run — keep names in sync with `sim.rs`.
fn semantic_knobs() -> Vec<KnobSpec> {
    vec![
        // -- memory & caching ------------------------------------------------
        // Buffer pool size in MB. Stock default is tiny; `default_config`
        // raises it to 60% of RAM per the paper's setup.
        KnobSpec::int("innodb_buffer_pool_size", 128, 131_072, true, 128),
        KnobSpec::int("innodb_buffer_pool_instances", 1, 64, false, 8),
        KnobSpec::int("innodb_old_blocks_pct", 5, 95, false, 37),
        KnobSpec::int("innodb_lru_scan_depth", 100, 16_384, true, 1024),
        KnobSpec::cat("innodb_adaptive_hash_index", vec!["OFF", "ON"], 1),
        KnobSpec::cat(
            "innodb_change_buffering",
            vec!["none", "inserts", "deletes", "changes", "purges", "all"],
            5,
        ),
        // -- redo/undo & durability -------------------------------------------
        // Log file size in MB.
        KnobSpec::int("innodb_log_file_size", 4, 8192, true, 48),
        // Log buffer size in MB.
        KnobSpec::int("innodb_log_buffer_size", 1, 1024, true, 16),
        KnobSpec::cat("innodb_flush_log_at_trx_commit", vec!["0", "1", "2"], 1),
        KnobSpec::int("sync_binlog", 0, 1000, false, 1),
        KnobSpec::cat("innodb_doublewrite", vec!["OFF", "ON"], 1),
        KnobSpec::cat("innodb_adaptive_flushing", vec!["OFF", "ON"], 1),
        KnobSpec::int("innodb_max_dirty_pages_pct", 1, 99, false, 75),
        // -- I/O ---------------------------------------------------------------
        KnobSpec::cat(
            "innodb_flush_method",
            vec!["fsync", "O_DSYNC", "O_DIRECT", "O_DIRECT_NO_FSYNC"],
            0,
        ),
        KnobSpec::cat("innodb_flush_neighbors", vec!["0", "1", "2"], 1),
        KnobSpec::int("innodb_io_capacity", 100, 40_000, true, 200),
        KnobSpec::int("innodb_io_capacity_max", 100, 80_000, true, 2000),
        KnobSpec::int("innodb_read_io_threads", 1, 64, false, 4),
        KnobSpec::int("innodb_write_io_threads", 1, 64, false, 4),
        // -- concurrency --------------------------------------------------------
        KnobSpec::int("innodb_thread_concurrency", 0, 512, false, 0),
        KnobSpec::int("innodb_purge_threads", 1, 32, false, 4),
        KnobSpec::int("innodb_page_cleaners", 1, 64, false, 4),
        KnobSpec::int("innodb_spin_wait_delay", 0, 200, false, 6),
        KnobSpec::int("innodb_sync_spin_loops", 0, 200, false, 30),
        KnobSpec::int("innodb_concurrency_tickets", 1, 50_000, true, 5000),
        KnobSpec::int("max_connections", 10, 10_000, true, 151),
        KnobSpec::int("thread_cache_size", 0, 1000, false, 9),
        KnobSpec::int("table_open_cache", 64, 16_384, true, 2000),
        // -- per-session buffers (KB unless noted) ------------------------------
        // Temp table sizes in MB.
        KnobSpec::int("tmp_table_size", 1, 2048, true, 16),
        KnobSpec::int("max_heap_table_size", 1, 2048, true, 16),
        // Sort/join/read buffers in KB.
        KnobSpec::int("sort_buffer_size", 32, 65_536, true, 256),
        KnobSpec::int("join_buffer_size", 32, 262_144, true, 256),
        KnobSpec::int("read_buffer_size", 8, 16_384, true, 128),
        KnobSpec::int("read_rnd_buffer_size", 8, 16_384, true, 256),
        // Binlog cache in KB.
        KnobSpec::int("binlog_cache_size", 4, 16_384, true, 32),
        // InnoDB sort buffer in MB.
        KnobSpec::int("innodb_sort_buffer_size", 1, 64, true, 1),
        // -- query cache ---------------------------------------------------------
        KnobSpec::cat("query_cache_type", vec!["OFF", "ON", "DEMAND"], 0),
        // Query cache size in MB.
        KnobSpec::int("query_cache_size", 1, 4096, true, 1),
        // -- optimizer / statistics ----------------------------------------------
        KnobSpec::int("innodb_stats_persistent_sample_pages", 1, 1024, true, 20),
        KnobSpec::int("optimizer_search_depth", 0, 62, false, 62),
    ]
}

/// Compact filler-knob descriptor.
enum F {
    /// Boolean (OFF/ON categorical) with default index.
    B(usize),
    /// Linear integer `(lo, hi, default)`.
    I(i64, i64, i64),
    /// Log-scale integer `(lo, hi, default)`.
    L(i64, i64, i64),
    /// Categorical with option list and default index.
    C(&'static [&'static str], usize),
}

/// The long tail: 157 real MySQL 5.7 variables with negligible simulated
/// effect. Their presence forces knob selection to find the ~40 needles.
fn filler_knobs() -> Vec<KnobSpec> {
    use F::*;
    const FILLER: &[(&str, F)] = &[
        ("autocommit", B(1)),
        ("automatic_sp_privileges", B(1)),
        ("back_log", L(1, 65_535, 80)),
        ("big_tables", B(0)),
        ("binlog_checksum", C(&["NONE", "CRC32"], 1)),
        ("binlog_direct_non_transactional_updates", B(0)),
        ("binlog_error_action", C(&["IGNORE_ERROR", "ABORT_SERVER"], 1)),
        ("binlog_format", C(&["ROW", "STATEMENT", "MIXED"], 0)),
        ("binlog_group_commit_sync_delay", I(0, 1_000_000, 0)),
        ("binlog_group_commit_sync_no_delay_count", I(0, 100_000, 0)),
        ("binlog_max_flush_queue_time", I(0, 100_000, 0)),
        ("binlog_order_commits", B(1)),
        ("binlog_row_image", C(&["FULL", "MINIMAL", "NOBLOB"], 0)),
        ("binlog_rows_query_log_events", B(0)),
        ("binlog_stmt_cache_size", L(4096, 16_777_216, 32_768)),
        ("bulk_insert_buffer_size", L(1024, 268_435_456, 8_388_608)),
        ("completion_type", C(&["NO_CHAIN", "CHAIN", "RELEASE"], 0)),
        ("concurrent_insert", C(&["NEVER", "AUTO", "ALWAYS"], 1)),
        ("connect_timeout", I(2, 3600, 10)),
        ("default_week_format", I(0, 7, 0)),
        ("delay_key_write", C(&["OFF", "ON", "ALL"], 1)),
        ("delayed_insert_limit", L(1, 1_000_000, 100)),
        ("delayed_insert_timeout", I(1, 3600, 300)),
        ("delayed_queue_size", L(1, 1_000_000, 1000)),
        ("div_precision_increment", I(0, 30, 4)),
        ("end_markers_in_json", B(0)),
        ("eq_range_index_dive_limit", I(0, 1000, 200)),
        ("expire_logs_days", I(0, 99, 0)),
        ("flush", B(0)),
        ("flush_time", I(0, 3600, 0)),
        ("ft_max_word_len", I(10, 84, 84)),
        ("ft_min_word_len", I(1, 10, 4)),
        ("ft_query_expansion_limit", I(0, 1000, 20)),
        ("general_log", B(0)),
        ("group_concat_max_len", L(4, 16_777_216, 1024)),
        ("host_cache_size", I(0, 65_536, 279)),
        ("interactive_timeout", I(1, 86_400, 28_800)),
        ("key_buffer_size", L(8, 4096, 8)),
        ("key_cache_age_threshold", I(100, 100_000, 300)),
        ("key_cache_block_size", L(512, 16_384, 1024)),
        ("key_cache_division_limit", I(1, 100, 100)),
        ("local_infile", B(1)),
        ("lock_wait_timeout", I(1, 31_536_000, 31_536_000)),
        ("log_bin_trust_function_creators", B(0)),
        ("log_error_verbosity", I(1, 3, 3)),
        ("log_queries_not_using_indexes", B(0)),
        ("log_slow_admin_statements", B(0)),
        ("log_slow_slave_statements", B(0)),
        ("log_throttle_queries_not_using_indexes", I(0, 1000, 0)),
        ("log_warnings", I(0, 2, 2)),
        ("long_query_time", I(0, 3600, 10)),
        ("low_priority_updates", B(0)),
        ("master_verify_checksum", B(0)),
        ("max_allowed_packet", L(1024, 1_073_741_824, 4_194_304)),
        ("max_binlog_cache_size", L(4096, 4_294_967_296, 4_294_967_296)),
        ("max_binlog_size", L(4096, 1_073_741_824, 1_073_741_824)),
        ("max_binlog_stmt_cache_size", L(4096, 4_294_967_296, 4_294_967_296)),
        ("max_delayed_threads", I(0, 16_384, 20)),
        ("max_digest_length", I(0, 1_048_576, 1024)),
        ("max_error_count", I(0, 65_535, 64)),
        ("max_join_size", L(1, 4_294_967_295, 4_294_967_295)),
        ("max_length_for_sort_data", I(4, 8_388_608, 1024)),
        ("max_points_in_geometry", I(3, 1_048_576, 65_536)),
        ("max_prepared_stmt_count", I(0, 1_048_576, 16_382)),
        ("max_relay_log_size", I(0, 1_073_741_824, 0)),
        ("max_seeks_for_key", L(1, 4_294_967_295, 4_294_967_295)),
        ("max_sort_length", I(4, 8_388_608, 1024)),
        ("max_sp_recursion_depth", I(0, 255, 0)),
        ("max_user_connections", I(0, 100_000, 0)),
        ("max_write_lock_count", L(1, 4_294_967_295, 4_294_967_295)),
        ("metadata_locks_cache_size", I(1, 1_048_576, 1024)),
        ("metadata_locks_hash_instances", I(1, 1024, 8)),
        ("min_examined_row_limit", I(0, 1_000_000, 0)),
        ("multi_range_count", I(1, 65_536, 256)),
        ("myisam_data_pointer_size", I(2, 7, 6)),
        ("myisam_max_sort_file_size", L(1, 1_048_576, 1_048_576)),
        ("myisam_repair_threads", I(1, 64, 1)),
        ("myisam_sort_buffer_size", L(4096, 1_073_741_824, 8_388_608)),
        ("myisam_stats_method", C(&["nulls_unequal", "nulls_equal", "nulls_ignored"], 0)),
        ("myisam_use_mmap", B(0)),
        ("net_buffer_length", L(1024, 1_048_576, 16_384)),
        ("net_read_timeout", I(1, 3600, 30)),
        ("net_retry_count", I(1, 100, 10)),
        ("net_write_timeout", I(1, 3600, 60)),
        ("ngram_token_size", I(1, 10, 2)),
        ("offline_mode", B(0)),
        ("old_alter_table", B(0)),
        ("open_files_limit", L(1024, 1_048_576, 65_535)),
        ("optimizer_prune_level", B(1)),
        ("optimizer_trace_limit", I(0, 100, 1)),
        ("optimizer_trace_max_mem_size", L(1024, 16_777_216, 16_384)),
        ("optimizer_trace_offset", I(-32, 32, -1)),
        ("performance_schema", B(1)),
        ("performance_schema_accounts_size", I(-1, 1_048_576, -1)),
        ("performance_schema_digests_size", I(-1, 1_048_576, -1)),
        ("performance_schema_events_stages_history_long_size", I(-1, 1_048_576, -1)),
        ("performance_schema_events_stages_history_size", I(-1, 1024, -1)),
        ("performance_schema_events_statements_history_long_size", I(-1, 1_048_576, -1)),
        ("performance_schema_events_statements_history_size", I(-1, 1024, -1)),
        ("performance_schema_events_transactions_history_long_size", I(-1, 1_048_576, -1)),
        ("performance_schema_events_transactions_history_size", I(-1, 1024, -1)),
        ("performance_schema_events_waits_history_long_size", I(-1, 1_048_576, -1)),
        ("performance_schema_events_waits_history_size", I(-1, 1024, -1)),
        ("performance_schema_hosts_size", I(-1, 1_048_576, -1)),
        ("performance_schema_max_cond_classes", I(0, 1024, 80)),
        ("performance_schema_max_cond_instances", I(-1, 1_048_576, -1)),
        ("performance_schema_max_digest_length", I(0, 1_048_576, 1024)),
        ("performance_schema_max_file_classes", I(0, 1024, 80)),
        ("performance_schema_max_file_handles", I(0, 1_048_576, 32_768)),
        ("performance_schema_max_file_instances", I(-1, 1_048_576, -1)),
        ("performance_schema_max_index_stat", I(-1, 1_048_576, -1)),
        ("performance_schema_max_memory_classes", I(0, 1024, 320)),
        ("performance_schema_max_metadata_locks", I(-1, 10_485_760, -1)),
        ("performance_schema_max_mutex_classes", I(0, 1024, 200)),
        ("performance_schema_max_mutex_instances", I(-1, 104_857_600, -1)),
        ("performance_schema_max_prepared_statements_instances", I(-1, 1_048_576, -1)),
        ("performance_schema_max_program_instances", I(-1, 1_048_576, -1)),
        ("performance_schema_max_rwlock_classes", I(0, 1024, 40)),
        ("performance_schema_max_rwlock_instances", I(-1, 104_857_600, -1)),
        ("performance_schema_max_socket_classes", I(0, 1024, 10)),
        ("performance_schema_max_socket_instances", I(-1, 1_048_576, -1)),
        ("performance_schema_max_sql_text_length", I(0, 1_048_576, 1024)),
        ("performance_schema_max_stage_classes", I(0, 1024, 150)),
        ("performance_schema_max_statement_classes", I(0, 1024, 192)),
        ("performance_schema_max_statement_stack", I(1, 256, 10)),
        ("performance_schema_max_table_handles", I(-1, 1_048_576, -1)),
        ("performance_schema_max_table_instances", I(-1, 1_048_576, -1)),
        ("performance_schema_max_table_lock_stat", I(-1, 1_048_576, -1)),
        ("performance_schema_max_thread_classes", I(0, 1024, 50)),
        ("performance_schema_max_thread_instances", I(-1, 1_048_576, -1)),
        ("performance_schema_session_connect_attrs_size", I(-1, 1_048_576, 512)),
        ("performance_schema_setup_actors_size", I(-1, 1024, -1)),
        ("performance_schema_setup_objects_size", I(-1, 1_048_576, -1)),
        ("performance_schema_users_size", I(-1, 1_048_576, -1)),
        ("preload_buffer_size", L(1024, 1_073_741_824, 32_768)),
        ("profiling_history_size", I(0, 100, 15)),
        ("query_alloc_block_size", L(1024, 16_777_216, 8192)),
        ("query_cache_limit", L(1024, 16_777_216, 1_048_576)),
        ("query_cache_min_res_unit", L(512, 65_536, 4096)),
        ("query_cache_wlock_invalidate", B(0)),
        ("query_prealloc_size", L(8192, 16_777_216, 8192)),
        ("range_alloc_block_size", L(4096, 65_536, 4096)),
        ("range_optimizer_max_mem_size", L(1024, 134_217_728, 8_388_608)),
        ("slave_checkpoint_group", I(32, 524_280, 512)),
        ("slave_checkpoint_period", I(1, 1_000_000, 300)),
        ("slave_compressed_protocol", B(0)),
        ("slave_net_timeout", I(1, 3600, 60)),
        ("slave_parallel_workers", I(0, 1024, 0)),
        ("slave_pending_jobs_size_max", L(1024, 1_073_741_824, 16_777_216)),
        ("slow_launch_time", I(0, 3600, 2)),
        ("slow_query_log", B(0)),
        ("stored_program_cache", I(16, 524_288, 256)),
        ("sync_frm", B(1)),
        ("sync_master_info", I(0, 100_000, 10_000)),
        ("sync_relay_log", I(0, 100_000, 10_000)),
        ("sync_relay_log_info", I(0, 100_000, 10_000)),
        ("table_definition_cache", I(400, 524_288, 1400)),
    ];

    FILLER
        .iter()
        .map(|(name, f)| match f {
            B(d) => KnobSpec::cat(name, vec!["OFF", "ON"], *d),
            I(lo, hi, d) => KnobSpec::int(name, *lo, *hi, false, *d),
            L(lo, hi, d) => KnobSpec::int(name, *lo, *hi, true, *d),
            C(choices, d) => KnobSpec::cat(name, choices.to_vec(), *d),
        })
        .collect()
}

/// Names of the semantic knobs (resolved by the simulator). Exposed for
/// tests and for experiment drivers that want "the knobs that could
/// plausibly matter".
pub fn semantic_knob_names() -> Vec<&'static str> {
    semantic_knobs().iter().map(|s| s.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knob::Domain;

    #[test]
    fn catalog_has_exactly_197_knobs() {
        assert_eq!(KnobCatalog::mysql57().len(), N_KNOBS);
    }

    #[test]
    fn knob_names_are_unique() {
        let cat = KnobCatalog::mysql57();
        assert_eq!(cat.by_name.len(), cat.len(), "duplicate knob names");
    }

    #[test]
    fn name_index_iterates_in_sorted_order() {
        // Regression for the D1 determinism contract: the name index must
        // traverse in a defined (sorted) order, independent of insertion
        // order or hasher state, across repeated constructions.
        let cat = KnobCatalog::mysql57();
        let names: Vec<&str> = cat.names_sorted().collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "by_name traversal must be sorted");
        assert_eq!(names.len(), N_KNOBS);
        let again: Vec<&str> = KnobCatalog::mysql57().names_sorted().collect();
        assert_eq!(names, again, "traversal order must be stable across builds");
    }

    #[test]
    fn defaults_are_legal() {
        let cat = KnobCatalog::mysql57();
        for s in cat.specs() {
            assert_eq!(s.domain.clamp(s.default), s.default, "illegal default for {}", s.name);
        }
    }

    #[test]
    fn default_config_sets_buffer_pool_to_60pct_ram() {
        let cat = KnobCatalog::mysql57();
        let cfg = cat.default_config(Hardware::B);
        let bp = cat.expect_index("innodb_buffer_pool_size");
        assert!((cfg[bp] - 16384.0 * 0.6).abs() < 1.0);
        // And scales with hardware.
        let cfg_d = cat.default_config(Hardware::D);
        assert!(cfg_d[bp] > cfg[bp]);
    }

    #[test]
    fn has_continuous_integer_and_categorical_knobs() {
        let cat = KnobCatalog::mysql57();
        let cats = cat.categorical_indices();
        let ints = cat.integer_indices();
        assert!(cats.len() >= 20, "need plenty of categorical knobs, got {}", cats.len());
        assert!(ints.len() >= 100);
        assert!(cats.len() + ints.len() <= cat.len());
    }

    #[test]
    fn log_domains_have_positive_bounds() {
        let cat = KnobCatalog::mysql57();
        for s in cat.specs() {
            if let Domain::Int { lo, log: true, .. } = s.domain {
                assert!(lo > 0, "{} has log scale with non-positive lower bound", s.name);
            }
        }
    }

    #[test]
    fn clamp_config_fixes_out_of_range_values() {
        let cat = KnobCatalog::mysql57();
        let mut cfg = cat.default_config(Hardware::B);
        cfg[0] = 1e12;
        cat.clamp_config(&mut cfg);
        let spec = cat.spec(0);
        assert_eq!(cfg[0], spec.domain.clamp(1e12));
    }

    #[test]
    fn semantic_knobs_all_resolve() {
        let cat = KnobCatalog::mysql57();
        for name in semantic_knob_names() {
            assert!(cat.index_of(name).is_some(), "missing semantic knob {name}");
        }
    }
}
