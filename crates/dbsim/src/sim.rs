//! The analytic response surface: configuration → performance, metrics,
//! failures, and the simulated wall-clock ledger.
//!
//! The score of a configuration is a product of per-mechanism factors
//! (buffer-pool hit rate, redo-log sizing, flush policy, concurrency peak,
//! per-session buffer benefits, query cache, …), each scaled by workload
//! sensitivities, plus a memory-pressure interaction term coupling the
//! buffer pool, per-thread buffers, and concurrency. Performance is the
//! score normalized to the default configuration, times the hardware scale
//! and base rate, times log-normal measurement noise.
//!
//! Failures (§4.1): memory overcommit "crashes" the DBMS; the tuning
//! driver substitutes the worst performance seen so far, exactly as the
//! paper does to avoid scaling problems.

use crate::catalog::KnobCatalog;
use crate::hardware::Hardware;
use crate::workload::{Workload, WorkloadProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulated stress-test duration per iteration (the paper replays each
/// workload for three minutes).
pub const EVAL_SECONDS: f64 = 180.0;
/// Simulated DBMS restart cost per iteration (knob changes need restarts).
pub const RESTART_SECONDS: f64 = 30.0;
/// Dimensionality of the internal-metric vector.
pub const METRICS_DIM: usize = 40;

/// Optimization direction for a workload's performance metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Maximize transactions per second (OLTP workloads).
    Throughput,
    /// Minimize 95th-percentile latency in seconds (JOB).
    Latency95,
}

/// Result of one simulated stress test.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Raw performance: tx/s for throughput workloads, seconds for latency.
    pub value: f64,
    /// Whether the configuration crashed the DBMS (value is meaningless).
    pub failed: bool,
    /// Simulated internal metrics (DDPG state / workload-mapping features).
    pub metrics: Vec<f64>,
    /// Simulated seconds this evaluation cost (stress test + restart).
    pub simulated_secs: f64,
}

/// A simulated MySQL 5.7 instance running one workload on one hardware
/// profile.
#[derive(Clone, Debug)]
pub struct DbSimulator {
    workload: Workload,
    hardware: Hardware,
    catalog: KnobCatalog,
    profile: WorkloadProfile,
    idx: Idx,
    noise_sigma: f64,
    rng: StdRng,
    s_default: f64,
    default_cfg: Vec<f64>,
    total_simulated_secs: f64,
    n_evals: usize,
}

/// Resolved catalog indices of every semantic knob.
#[derive(Clone, Debug)]
struct Idx {
    bp_size: usize,
    bp_instances: usize,
    old_blocks_pct: usize,
    lru_scan_depth: usize,
    adaptive_hash: usize,
    change_buffering: usize,
    log_file_size: usize,
    log_buffer_size: usize,
    flush_log_at_trx_commit: usize,
    sync_binlog: usize,
    doublewrite: usize,
    adaptive_flushing: usize,
    max_dirty_pages_pct: usize,
    flush_method: usize,
    flush_neighbors: usize,
    io_capacity: usize,
    io_capacity_max: usize,
    read_io_threads: usize,
    write_io_threads: usize,
    thread_concurrency: usize,
    purge_threads: usize,
    page_cleaners: usize,
    spin_wait_delay: usize,
    sync_spin_loops: usize,
    concurrency_tickets: usize,
    max_connections: usize,
    thread_cache_size: usize,
    table_open_cache: usize,
    tmp_table_size: usize,
    max_heap_table_size: usize,
    sort_buffer_size: usize,
    join_buffer_size: usize,
    read_buffer_size: usize,
    read_rnd_buffer_size: usize,
    binlog_cache_size: usize,
    innodb_sort_buffer: usize,
    query_cache_type: usize,
    query_cache_size: usize,
    stats_sample_pages: usize,
    optimizer_search_depth: usize,
}

impl Idx {
    fn resolve(cat: &KnobCatalog) -> Self {
        let g = |n: &str| cat.expect_index(n);
        Self {
            bp_size: g("innodb_buffer_pool_size"),
            bp_instances: g("innodb_buffer_pool_instances"),
            old_blocks_pct: g("innodb_old_blocks_pct"),
            lru_scan_depth: g("innodb_lru_scan_depth"),
            adaptive_hash: g("innodb_adaptive_hash_index"),
            change_buffering: g("innodb_change_buffering"),
            log_file_size: g("innodb_log_file_size"),
            log_buffer_size: g("innodb_log_buffer_size"),
            flush_log_at_trx_commit: g("innodb_flush_log_at_trx_commit"),
            sync_binlog: g("sync_binlog"),
            doublewrite: g("innodb_doublewrite"),
            adaptive_flushing: g("innodb_adaptive_flushing"),
            max_dirty_pages_pct: g("innodb_max_dirty_pages_pct"),
            flush_method: g("innodb_flush_method"),
            flush_neighbors: g("innodb_flush_neighbors"),
            io_capacity: g("innodb_io_capacity"),
            io_capacity_max: g("innodb_io_capacity_max"),
            read_io_threads: g("innodb_read_io_threads"),
            write_io_threads: g("innodb_write_io_threads"),
            thread_concurrency: g("innodb_thread_concurrency"),
            purge_threads: g("innodb_purge_threads"),
            page_cleaners: g("innodb_page_cleaners"),
            spin_wait_delay: g("innodb_spin_wait_delay"),
            sync_spin_loops: g("innodb_sync_spin_loops"),
            concurrency_tickets: g("innodb_concurrency_tickets"),
            max_connections: g("max_connections"),
            thread_cache_size: g("thread_cache_size"),
            table_open_cache: g("table_open_cache"),
            tmp_table_size: g("tmp_table_size"),
            max_heap_table_size: g("max_heap_table_size"),
            sort_buffer_size: g("sort_buffer_size"),
            join_buffer_size: g("join_buffer_size"),
            read_buffer_size: g("read_buffer_size"),
            read_rnd_buffer_size: g("read_rnd_buffer_size"),
            binlog_cache_size: g("binlog_cache_size"),
            innodb_sort_buffer: g("innodb_sort_buffer_size"),
            query_cache_type: g("query_cache_type"),
            query_cache_size: g("query_cache_size"),
            stats_sample_pages: g("innodb_stats_persistent_sample_pages"),
            optimizer_search_depth: g("optimizer_search_depth"),
        }
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Saturating benefit in log space: 0 at `lo_anchor`, →1 as v grows past
/// `center`.
#[inline]
fn log_rise(v: f64, anchor: f64, center: f64, width: f64) -> f64 {
    let s = |x: f64| sigmoid((x.max(1e-9).ln() - center.ln()) / width);
    s(v) - s(anchor)
}

/// Log-space Gaussian bump peaking at `center`.
#[inline]
fn gauss_log(v: f64, center: f64, width: f64) -> f64 {
    let d = (v.max(1e-9).ln() - center.ln()) / width;
    (-0.5 * d * d).exp()
}

/// Linear-space Gaussian bump peaking at `center`.
#[inline]
fn gauss_lin(v: f64, center: f64, width: f64) -> f64 {
    let d = (v - center) / width;
    (-0.5 * d * d).exp()
}

/// FNV-1a hash used for deterministic filler-knob micro-effects.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl DbSimulator {
    /// Builds a simulator for `workload` on `hardware`, with noise driven
    /// by `seed`.
    pub fn new(workload: Workload, hardware: Hardware, seed: u64) -> Self {
        let catalog = KnobCatalog::mysql57();
        let idx = Idx::resolve(&catalog);
        let profile = workload.profile();
        let default_cfg = catalog.default_config(hardware);
        let mut sim = Self {
            workload,
            hardware,
            catalog,
            profile,
            idx,
            noise_sigma: 0.02,
            rng: StdRng::seed_from_u64(seed),
            s_default: 1.0,
            default_cfg,
            total_simulated_secs: 0.0,
            n_evals: 0,
        };
        sim.s_default = sim
            .surface_score(&sim.default_cfg.clone())
            .expect("default configuration must not crash");
        sim
    }

    /// The knob catalog.
    pub fn catalog(&self) -> &KnobCatalog {
        &self.catalog
    }

    /// The workload under test.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// The hardware profile.
    pub fn hardware(&self) -> Hardware {
        self.hardware
    }

    /// The default configuration (buffer pool at 60% RAM).
    pub fn default_config(&self) -> &[f64] {
        &self.default_cfg
    }

    /// Optimization direction for this workload.
    pub fn objective(&self) -> Objective {
        if self.workload.is_latency_objective() {
            Objective::Latency95
        } else {
            Objective::Throughput
        }
    }

    /// Overrides the measurement-noise level (σ of the log-normal factor).
    pub fn set_noise_sigma(&mut self, sigma: f64) {
        assert!(sigma >= 0.0);
        self.noise_sigma = sigma;
    }

    /// Total simulated wall-clock seconds spent in evaluations so far.
    pub fn total_simulated_secs(&self) -> f64 {
        self.total_simulated_secs
    }

    /// Number of evaluations performed.
    pub fn n_evals(&self) -> usize {
        self.n_evals
    }

    /// Runs one simulated three-minute stress test (plus restart).
    pub fn evaluate(&mut self, cfg: &[f64]) -> Outcome {
        self.n_evals += 1;
        self.total_simulated_secs += EVAL_SECONDS + RESTART_SECONDS;
        // Temporarily take the internal RNG so the shared evaluation core
        // can borrow `self` immutably; the stream advances exactly as the
        // pre-refactor code did (noise draw, then one draw per metric).
        let mut rng = std::mem::replace(&mut self.rng, StdRng::seed_from_u64(0));
        let out = self.evaluate_with_rng(cfg, &mut rng);
        self.rng = rng;
        out
    }

    /// Pure variant of [`evaluate`]: measurement noise is drawn from a
    /// fresh RNG seeded with `noise_seed` instead of the simulator's
    /// advancing internal stream. The result is a pure function of
    /// `(cfg, noise_seed)` — bit-identical no matter how many evaluations
    /// happened before or on which thread it runs — which is what lets
    /// the parallel executor's shared evaluation cache memoize outcomes
    /// without changing results. Does not advance the internal RNG or the
    /// ledger counters.
    pub fn evaluate_seeded(&self, cfg: &[f64], noise_seed: u64) -> Outcome {
        let mut rng = StdRng::seed_from_u64(noise_seed);
        self.evaluate_with_rng(cfg, &mut rng)
    }

    /// Shared evaluation core: one stress test with noise drawn from
    /// `rng` (draw order: one value for the performance noise, then one
    /// per internal metric). Counts every evaluation (and every crash-region
    /// hit) in the global metrics registry — observation only, so caching a
    /// result elsewhere changes the counts but never the outcomes.
    fn evaluate_with_rng(&self, cfg: &[f64], rng: &mut StdRng) -> Outcome {
        assert_eq!(cfg.len(), self.catalog.len(), "configuration length mismatch");
        // Evaluations are the hot path; resolve the instrument handles once.
        static COUNTERS: std::sync::OnceLock<(dbtune_obs::Counter, dbtune_obs::Counter)> =
            std::sync::OnceLock::new();
        let (evals, crashes) = COUNTERS.get_or_init(|| {
            let m = &dbtune_obs::global().metrics;
            (m.counter("sim.evals"), m.counter("sim.crashes"))
        });
        evals.inc();
        match self.surface_score(cfg) {
            Err(()) => {
                crashes.inc();
                Outcome {
                    value: f64::NAN,
                    failed: true,
                    metrics: vec![0.0; METRICS_DIM],
                    simulated_secs: EVAL_SECONDS + RESTART_SECONDS,
                }
            }
            Ok(s) => {
                let noise = if self.noise_sigma > 0.0 {
                    let z: f64 = rng.sample(rand_distr::StandardNormal);
                    (z * self.noise_sigma).exp()
                } else {
                    1.0
                };
                let ratio = (s / self.s_default).max(0.02);
                let value = match self.objective() {
                    Objective::Throughput => {
                        self.profile.base_rate * self.hardware.perf_scale() * ratio * noise
                    }
                    // Default JOB latency ≈ 200 s, matching §6.2.1.
                    Objective::Latency95 => 200.0 / ratio * noise,
                };
                let metrics = self.metrics(cfg, ratio, rng);
                Outcome {
                    value,
                    failed: false,
                    metrics,
                    simulated_secs: EVAL_SECONDS + RESTART_SECONDS,
                }
            }
        }
    }

    /// Noise-free expected performance (for tests and analysis); `None`
    /// when the configuration crashes.
    pub fn expected_value(&self, cfg: &[f64]) -> Option<f64> {
        let s = self.surface_score(cfg).ok()?;
        let ratio = (s / self.s_default).max(0.02);
        Some(match self.objective() {
            Objective::Throughput => self.profile.base_rate * self.hardware.perf_scale() * ratio,
            Objective::Latency95 => 200.0 / ratio,
        })
    }

    /// Deterministic estimate of the noise-free optimum over the
    /// sub-space spanned by `knob_indices` (catalog indices), every other
    /// knob held at `base` — the regret baseline of the quality flight
    /// recorder (`dbtune-diag`).
    ///
    /// The multiplicative surface has interaction terms, so there is no
    /// closed form; instead we run coordinate ascent over
    /// [`Self::expected_value`]: each sweep scans every selected knob on
    /// a fixed 17-point unit-space grid (categoricals enumerate all
    /// choices), keeps the best value, and three sweeps let knobs react
    /// to each other's moves. Pure function of the catalog and arguments
    /// — no randomness, no mutation — so the estimate is byte-stable.
    /// Crashing grid points are skipped; `None` only if every probed
    /// configuration (including `base`) crashes.
    ///
    /// The result is a (tight, deterministic) *lower* bound on the true
    /// optimum of the subspace, which is exactly what a regret baseline
    /// needs: regressions show up as growing regret against a fixed
    /// reference. Observed scores carry simulated measurement noise, so
    /// slightly negative regret is possible and documented.
    pub fn estimate_optimum_over(&self, knob_indices: &[usize], base: &[f64]) -> Option<f64> {
        const GRID: usize = 17;
        const SWEEPS: usize = 3;
        let orient = |v: f64| match self.objective() {
            Objective::Throughput => v,
            Objective::Latency95 => -v,
        };
        let mut cfg = base.to_vec();
        let mut best = self.expected_value(&cfg).map(orient);
        for _ in 0..SWEEPS {
            for &ki in knob_indices {
                let spec = &self.catalog.specs()[ki];
                let steps = match spec.domain.cardinality() {
                    Some(c) => c.min(GRID),
                    None => GRID,
                };
                if steps < 2 {
                    continue;
                }
                let mut best_v = cfg[ki];
                for step in 0..steps {
                    let u = step as f64 / (steps - 1) as f64;
                    let v = spec.domain.from_unit(u);
                    let prev = cfg[ki];
                    cfg[ki] = v;
                    if let Some(val) = self.expected_value(&cfg).map(orient) {
                        if best.is_none_or(|b| val > b) {
                            best = Some(val);
                            best_v = v;
                        }
                    }
                    cfg[ki] = prev;
                }
                cfg[ki] = best_v;
            }
        }
        best.map(|b| match self.objective() {
            Objective::Throughput => b,
            Objective::Latency95 => -b,
        })
    }

    /// Effective server thread count implied by a configuration.
    fn effective_threads(&self, cfg: &[f64]) -> f64 {
        let t = cfg[self.idx.thread_concurrency];
        if t < 0.5 {
            // 0 = unlimited; the simulated client drives ~8×cores sessions.
            (self.hardware.cores() as f64) * 8.0
        } else {
            t
        }
    }

    /// The multiplicative score surface. `Err(())` = crash.
    fn surface_score(&self, cfg: &[f64]) -> Result<f64, ()> {
        let p = &self.profile;
        let hw = self.hardware;
        let cores = hw.cores() as f64;
        let ram = hw.ram_mb();
        let idx = &self.idx;

        let wp = p.write_intensity;
        let rd = p.read_intensity;
        let scan = p.scan_intensity;
        let jc = p.join_complexity;
        let cont = p.contention;

        let bp = cfg[idx.bp_size]; // MB
        let ws = self.workload.working_set_mb();

        // --- hard failure regions -----------------------------------------
        // Real MySQL tolerates moderate overcommit by swapping (modelled
        // as smooth thrash penalties below); it only gets OOM-killed at
        // extreme misconfiguration.
        if bp > ram * 4.0 {
            return Err(()); // OOM at startup
        }
        let t_eff = self.effective_threads(cfg);
        let tmp_mb = cfg[idx.tmp_table_size].min(cfg[idx.max_heap_table_size]);
        let per_thread_mb = (cfg[idx.sort_buffer_size]
            + cfg[idx.join_buffer_size]
            + cfg[idx.read_buffer_size]
            + cfg[idx.read_rnd_buffer_size]
            + cfg[idx.binlog_cache_size])
            / 1024.0
            + tmp_mb * 0.5;
        let qc_mb = if cfg[idx.query_cache_type] >= 0.5 { cfg[idx.query_cache_size] } else { 0.0 };
        // Sort/join/read buffers are allocated per *executing* operation —
        // concurrency beyond ~4x cores queues rather than multiplying
        // resident buffer memory. In-memory temp tables, however, live per
        // connection (the paper's tmp_table_size × innodb_thread_concurrency
        // interaction).
        let active = t_eff.min(4.0 * cores);
        let buffers_mb = per_thread_mb - tmp_mb * 0.5;
        let total_mem = bp + active * buffers_mb * 0.3 + t_eff * tmp_mb * 0.5 + qc_mb;
        if total_mem > ram * 2.5 {
            return Err(()); // OOM under load — the tmp_table × concurrency trap
        }

        let mut s = 1.0f64;

        // --- buffer pool: hit-rate benefit + thrash cliff -------------------
        let hit = 1.0 - (-1.2 * bp / ws).exp();
        let miss_pen = 1.2 + 2.2 * rd + 1.4 * scan;
        s *= 1.0 / (1.0 + miss_pen * (1.0 - hit));
        if bp > ram * 0.85 {
            // Swap thrash: steep but floored — the DBMS limps, it doesn't die.
            s *= (-6.0 * (bp - ram * 0.85) / ram).exp().max(0.05);
        }
        // Memory pressure penalty before the hard OOM cliff.
        if total_mem > ram * 0.9 {
            s *= (-5.0 * (total_mem - ram * 0.9) / ram).exp().max(0.05);
        }

        // --- redo log sizing -------------------------------------------------
        s *= 1.0 + 0.45 * wp * log_rise(cfg[idx.log_file_size], 48.0, 400.0, 0.9);
        s *= 1.0 + 0.06 * wp * log_rise(cfg[idx.log_buffer_size], 16.0, 64.0, 0.9);

        // --- durability policy -------------------------------------------------
        s *= match cfg[idx.flush_log_at_trx_commit] as usize {
            0 => 1.0 + 0.28 * wp,
            2 => 1.0 + 0.22 * wp,
            _ => 1.0,
        };
        let sb = cfg[idx.sync_binlog];
        s *= 1.0 + 0.20 * wp / (1.0 + sb);
        if cfg[idx.doublewrite] < 0.5 {
            s *= 1.0 + 0.12 * wp;
        }
        if cfg[idx.adaptive_flushing] < 0.5 {
            s *= 1.0 - 0.05 * wp;
        }
        // Dirty-page ceiling: monotone benefit saturating near the default.
        s *= 1.0 + 0.10 * wp * sigmoid((cfg[idx.max_dirty_pages_pct] - 50.0) / 8.0);

        // --- I/O path ------------------------------------------------------------
        let io_int = 0.55 * wp + 0.45 * scan;
        s *= match cfg[idx.flush_method] as usize {
            1 => 1.0 - 0.03,                              // O_DSYNC
            2 => 1.0 + 0.10 * io_int * (0.5 + 0.5 * hit), // O_DIRECT
            3 => 1.0 + 0.12 * io_int * (0.5 + 0.5 * hit), // O_DIRECT_NO_FSYNC
            _ => 1.0,                                     // fsync
        };
        s *= match cfg[idx.flush_neighbors] as usize {
            0 => 1.0 + 0.08 * wp, // SSD: neighbor flushing wasted
            2 => 1.0 - 0.04 * wp,
            _ => 1.0,
        };
        s *= 1.0 + 0.28 * wp * log_rise(cfg[idx.io_capacity], 200.0, 2000.0, 1.0);
        s *= 1.0 + 0.05 * wp * log_rise(cfg[idx.io_capacity_max], 2000.0, 8000.0, 1.0);
        s *= 1.0 + 0.08 * (rd + scan) * 0.5 * gauss_log(cfg[idx.read_io_threads], cores, 0.9);
        s *= 1.0 + 0.08 * wp * gauss_log(cfg[idx.write_io_threads], cores, 0.9);

        // --- concurrency ---------------------------------------------------------
        // Peak at ~2× cores; "unlimited" (default) sits below the peak so
        // tuning the knob pays off on contended workloads.
        s *= 1.0 + 0.30 * cont * gauss_log(t_eff, 2.0 * cores, 0.9);
        s *= 1.0 + 0.05 * wp * gauss_log(cfg[idx.purge_threads], cores / 4.0, 0.9);
        s *= 1.0 + 0.05 * wp * gauss_log(cfg[idx.page_cleaners], cores / 2.0, 0.9);
        s *= 1.0 + 0.06 * cont * gauss_log(cfg[idx.bp_instances], cores, 0.8);
        let mc = cfg[idx.max_connections];
        if mc < t_eff {
            s *= 0.55; // connection starvation
        } else {
            s *= 1.0 + 0.02 * log_rise(mc, 151.0, 600.0, 1.0);
        }
        s *= 1.0 + 0.04 * cont * log_rise(cfg[idx.thread_cache_size], 9.0, 64.0, 1.0);
        s *= 1.0
            + 0.03
                * log_rise(cfg[idx.table_open_cache], 2000.0, 4000.0, 1.0)
                * (p.tables as f64 / 150.0).min(1.0);

        // --- trap knobs: default already optimal --------------------------------
        // Large variance, zero tunability: the property that separates the
        // tunability-based measurements from the variance-based ones (§5.2).
        s *= 1.0 + 0.30 * gauss_log(cfg[idx.lru_scan_depth], 1024.0, 0.8);
        s *= 1.0 + 0.25 * cont * gauss_lin(cfg[idx.spin_wait_delay], 6.0, 30.0);
        s *= 1.0 + 0.18 * cont * gauss_lin(cfg[idx.sync_spin_loops], 30.0, 50.0);
        s *= 1.0 + 0.22 * rd * gauss_lin(cfg[idx.old_blocks_pct], 37.0, 25.0);
        s *= 1.0 + 0.10 * gauss_log(cfg[idx.concurrency_tickets], 5000.0, 1.0);

        // --- engine features ------------------------------------------------------
        if cfg[idx.adaptive_hash] >= 0.5 {
            s *= 1.0 + 0.10 * rd - 0.06 * cont * wp;
        }
        let cb = cfg[idx.change_buffering] / 5.0; // none..all
        s *= 1.0 + 0.08 * wp * cb;

        // --- per-session buffers ----------------------------------------------------
        s *= 1.0 + (0.25 * scan + 0.04 * cont) * log_rise(tmp_mb, 16.0, 64.0, 0.9);
        s *= 1.0 + (0.20 * scan + 0.02) * log_rise(cfg[idx.sort_buffer_size], 256.0, 4096.0, 1.0);
        s *= 1.0 + 0.35 * jc * log_rise(cfg[idx.join_buffer_size], 256.0, 16384.0, 1.1);
        s *= 1.0 + 0.06 * scan * log_rise(cfg[idx.read_buffer_size], 128.0, 2048.0, 1.0);
        s *= 1.0 + 0.06 * scan * log_rise(cfg[idx.read_rnd_buffer_size], 256.0, 2048.0, 1.0);
        s *= 1.0 + 0.04 * wp * log_rise(cfg[idx.binlog_cache_size], 32.0, 1024.0, 1.0);
        s *= 1.0 + 0.05 * scan * log_rise(cfg[idx.innodb_sort_buffer], 1.0, 8.0, 0.9);

        // --- query cache: read-repetition benefit vs write invalidation -------------
        let qct = cfg[idx.query_cache_type] as usize;
        if qct > 0 {
            let size_factor = log_rise(cfg[idx.query_cache_size], 1.0, 128.0, 1.0);
            let strength = if qct == 1 { 1.0 } else { 0.5 };
            s *= 1.0 + strength * size_factor * (0.30 * p.repeat_read * rd - 0.20 * wp);
        }

        // --- optimizer & statistics ----------------------------------------------------
        s *= 1.0 + 0.15 * jc * log_rise(cfg[idx.stats_sample_pages], 20.0, 128.0, 1.0)
            - 0.02 * wp * log_rise(cfg[idx.stats_sample_pages], 20.0, 512.0, 1.0);
        // JOB's 113-way joins: exhaustive search (default 62) wastes planning
        // time; a moderate depth is optimal. 0 = heuristic auto ≈ depth 12.
        let osd = cfg[idx.optimizer_search_depth];
        let osd_eff = if osd < 0.5 { 12.0 } else { osd };
        s *= 1.0 + 0.28 * jc * gauss_log(osd_eff, 8.0, 1.0);

        // --- filler knobs: deterministic micro-effects ------------------------------
        for (i, spec) in self.catalog.specs().iter().enumerate() {
            let h = fnv1a(spec.name);
            // Semantic knobs are modelled above; identify filler by index
            // (the first 40 catalog entries are semantic).
            if i < 40 {
                continue;
            }
            let amp = ((h % 1000) as f64 / 1000.0) * 0.004;
            let dir = if (h >> 10) & 1 == 0 { 1.0 } else { -1.0 };
            let du = spec.domain.to_unit(cfg[i]) - spec.domain.to_unit(spec.default);
            s *= 1.0 + amp * dir * du;
        }

        debug_assert!(s.is_finite() && s > 0.0, "surface score degenerate: {s}");
        Ok(s)
    }

    /// Simulated internal metrics: a workload signature plus
    /// configuration-responsive counters, lightly noised from `rng`.
    fn metrics(&self, cfg: &[f64], perf_ratio: f64, rng: &mut StdRng) -> Vec<f64> {
        let p = &self.profile;
        let idx = &self.idx;
        let ram = self.hardware.ram_mb();
        let bp = cfg[idx.bp_size];
        let ws = self.workload.working_set_mb();
        let hit = 1.0 - (-1.2 * bp / ws).exp();
        let t_eff = self.effective_threads(cfg);
        let cores = self.hardware.cores() as f64;
        let sat = |x: f64| x / (1.0 + x);

        let mut m = Vec::with_capacity(METRICS_DIM);
        // Workload signature (stable identity for workload mapping).
        m.push(p.read_only_frac);
        m.push(p.write_intensity);
        m.push(p.read_intensity);
        m.push(p.scan_intensity);
        m.push(p.join_complexity);
        m.push(p.contention);
        m.push(p.repeat_read);
        m.push(sat(p.size_gb / 10.0));
        m.push(sat(p.tables as f64 / 50.0));
        m.push(sat(p.base_rate / 5000.0));
        // Buffer pool counters.
        m.push(hit);
        m.push(sat(bp / ram));
        m.push(sat(ws / bp.max(1.0)));
        m.push((1.0 - hit) * p.read_intensity); // disk reads/s proxy
        m.push(cfg[idx.max_dirty_pages_pct] / 100.0 * p.write_intensity);
        // Log subsystem.
        m.push(sat(cfg[idx.log_file_size] / 1024.0));
        m.push(p.write_intensity * sat(200.0 / cfg[idx.log_file_size].max(4.0))); // checkpoint pressure
        m.push(cfg[idx.flush_log_at_trx_commit] / 2.0);
        m.push(sat(cfg[idx.sync_binlog] / 10.0));
        // Concurrency.
        m.push(sat(t_eff / (4.0 * cores)));
        m.push(p.contention * sat(t_eff / cores / 4.0)); // lock waits proxy
        m.push(sat(cfg[idx.max_connections] / 1000.0));
        m.push(sat(cfg[idx.thread_cache_size] / 100.0));
        // IO.
        m.push(sat(cfg[idx.io_capacity] / 5000.0));
        m.push(sat((cfg[idx.read_io_threads] + cfg[idx.write_io_threads]) / 32.0));
        m.push(cfg[idx.flush_method] / 3.0);
        // Session buffers / temp tables.
        m.push(sat(cfg[idx.tmp_table_size] / 256.0));
        m.push(p.scan_intensity * sat(64.0 / cfg[idx.tmp_table_size].max(1.0))); // on-disk tmp tables
        m.push(sat(cfg[idx.sort_buffer_size] / 8192.0));
        m.push(sat(cfg[idx.join_buffer_size] / 32768.0));
        // Query cache.
        m.push(if cfg[idx.query_cache_type] >= 0.5 { 1.0 } else { 0.0 });
        m.push(p.repeat_read * sat(cfg[idx.query_cache_size] / 256.0));
        // Throughput-derived counters.
        m.push(sat(perf_ratio));
        m.push(sat(perf_ratio * p.write_intensity));
        m.push(sat(perf_ratio * p.read_intensity));
        m.push(p.contention / (1.0 + perf_ratio)); // queueing proxy
                                                   // Optimizer.
        m.push(cfg[idx.optimizer_search_depth] / 62.0);
        m.push(sat(cfg[idx.stats_sample_pages] / 256.0));
        m.push(cfg[idx.adaptive_hash]);
        m.push(sat(cfg[idx.table_open_cache] / 8000.0));
        debug_assert_eq!(m.len(), METRICS_DIM);

        // Light multiplicative noise on every metric.
        for v in &mut m {
            let z: f64 = rng.sample(rand_distr::StandardNormal);
            *v *= 1.0 + 0.03 * z;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(w: Workload) -> DbSimulator {
        DbSimulator::new(w, Hardware::B, 42)
    }

    #[test]
    fn default_config_matches_base_rate() {
        let mut s = sim(Workload::Sysbench);
        s.set_noise_sigma(0.0);
        let cfg = s.default_config().to_vec();
        let out = s.evaluate(&cfg);
        assert!(!out.failed);
        assert!(
            (out.value - 3200.0).abs() < 1.0,
            "default TPS should equal base rate: {}",
            out.value
        );
    }

    #[test]
    fn job_default_latency_is_about_200s() {
        let mut s = sim(Workload::Job);
        s.set_noise_sigma(0.0);
        let cfg = s.default_config().to_vec();
        let out = s.evaluate(&cfg);
        assert_eq!(s.objective(), Objective::Latency95);
        assert!((out.value - 200.0).abs() < 1.0);
    }

    #[test]
    fn oversized_buffer_pool_crashes() {
        let mut s = sim(Workload::Sysbench);
        let mut cfg = s.default_config().to_vec();
        let bp = s.catalog().expect_index("innodb_buffer_pool_size");
        cfg[bp] = Hardware::B.ram_mb() * 5.0; // 5x RAM: OOM at startup
        let out = s.evaluate(&cfg);
        assert!(out.failed);
        // Moderate overcommit swaps instead of crashing, but gets slow.
        let mut cfg2 = s.default_config().to_vec();
        cfg2[bp] = Hardware::B.ram_mb() * 0.98;
        let out2 = s.evaluate(&cfg2);
        assert!(!out2.failed);
        let dflt = s.expected_value(s.default_config()).expect("modelled config must evaluate");
        assert!(s.expected_value(&cfg2).expect("modelled config must evaluate") < dflt * 0.9);
    }

    #[test]
    fn thread_times_tmp_table_memory_interaction_crashes() {
        let mut s = sim(Workload::Sysbench);
        let cat = s.catalog().clone();
        let mut cfg = s.default_config().to_vec();
        cfg[cat.expect_index("innodb_thread_concurrency")] = 512.0;
        cfg[cat.expect_index("tmp_table_size")] = 2048.0;
        cfg[cat.expect_index("max_heap_table_size")] = 2048.0;
        let out = s.evaluate(&cfg);
        assert!(out.failed, "512 threads × 2GB tmp tables must overcommit");
    }

    #[test]
    fn optimum_estimate_beats_default_and_is_deterministic() {
        let s = sim(Workload::Sysbench);
        let cat = s.catalog().clone();
        let knobs = vec![
            cat.expect_index("innodb_buffer_pool_size"),
            cat.expect_index("innodb_flush_log_at_trx_commit"),
            cat.expect_index("innodb_log_file_size"),
        ];
        let base = s.default_config().to_vec();
        let opt = s.estimate_optimum_over(&knobs, &base).expect("default must not crash");
        let dflt = s.expected_value(&base).expect("default must evaluate");
        assert!(opt >= dflt, "coordinate ascent can never do worse than base: {dflt} -> {opt}");
        assert!(opt > dflt * 1.05, "tuning 3 impactful knobs should pay off: {dflt} -> {opt}");
        let again = s.estimate_optimum_over(&knobs, &base).expect("same inputs");
        assert_eq!(opt.to_bits(), again.to_bits(), "estimator must be byte-stable");
    }

    #[test]
    fn optimum_estimate_minimizes_latency_objectives() {
        let s = sim(Workload::Job);
        let cat = s.catalog().clone();
        let knobs =
            vec![cat.expect_index("innodb_buffer_pool_size"), cat.expect_index("join_buffer_size")];
        let base = s.default_config().to_vec();
        let opt = s.estimate_optimum_over(&knobs, &base).expect("default must not crash");
        let dflt = s.expected_value(&base).expect("default must evaluate");
        assert_eq!(s.objective(), Objective::Latency95);
        assert!(opt <= dflt, "latency optimum must not exceed base: {dflt} -> {opt}");
    }

    #[test]
    fn write_knobs_help_write_heavy_workload() {
        let mut s = sim(Workload::Tpcc);
        s.set_noise_sigma(0.0);
        let cat = s.catalog().clone();
        let mut cfg = s.default_config().to_vec();
        cfg[cat.expect_index("innodb_flush_log_at_trx_commit")] = 0.0;
        cfg[cat.expect_index("sync_binlog")] = 0.0;
        cfg[cat.expect_index("innodb_log_file_size")] = 2048.0;
        cfg[cat.expect_index("innodb_io_capacity")] = 8000.0;
        let tuned = s.expected_value(&cfg).expect("modelled config must evaluate");
        let dflt = s.expected_value(s.default_config()).expect("modelled config must evaluate");
        assert!(tuned > dflt * 1.5, "write tuning should pay off: {dflt} -> {tuned}");
    }

    #[test]
    fn join_buffer_helps_job_but_not_voter() {
        let job = sim(Workload::Job);
        let voter = sim(Workload::Voter);
        let jb = job.catalog().expect_index("join_buffer_size");

        // 32 MB join buffers: large enough to matter, small enough to fit
        // within memory across 64 effective threads.
        let mut cfg_j = job.default_config().to_vec();
        cfg_j[jb] = 32_768.0;
        let lat_tuned = job.expected_value(&cfg_j).expect("modelled config must evaluate");
        let lat_dflt =
            job.expected_value(job.default_config()).expect("modelled config must evaluate");
        assert!(lat_tuned < lat_dflt * 0.87, "join buffer should cut JOB latency");

        let mut cfg_v = voter.default_config().to_vec();
        cfg_v[jb] = 32_768.0;
        let tps_tuned = voter.expected_value(&cfg_v).expect("modelled config must evaluate");
        let tps_dflt =
            voter.expected_value(voter.default_config()).expect("modelled config must evaluate");
        assert!((tps_tuned / tps_dflt - 1.0).abs() < 0.02, "join buffer ~irrelevant for Voter");
    }

    #[test]
    fn trap_knob_default_is_optimal() {
        let s = sim(Workload::Sysbench);
        let lru = s.catalog().expect_index("innodb_lru_scan_depth");
        let dflt = s.expected_value(s.default_config()).expect("modelled config must evaluate");
        for v in [100.0, 400.0, 4000.0, 16_384.0] {
            let mut cfg = s.default_config().to_vec();
            cfg[lru] = v;
            let moved = s.expected_value(&cfg).expect("modelled config must evaluate");
            assert!(moved <= dflt + 1e-9, "moving lru_scan_depth to {v} should not help");
        }
    }

    #[test]
    fn filler_knobs_have_negligible_effect() {
        let s = sim(Workload::Sysbench);
        let dflt = s.expected_value(s.default_config()).expect("modelled config must evaluate");
        let i = s.catalog().expect_index("performance_schema_max_mutex_classes");
        let mut cfg = s.default_config().to_vec();
        cfg[i] = 1024.0;
        let moved = s.expected_value(&cfg).expect("modelled config must evaluate");
        assert!((moved / dflt - 1.0).abs() < 0.01);
    }

    #[test]
    fn hardware_scales_throughput() {
        let mut small = DbSimulator::new(Workload::Tatp, Hardware::A, 1);
        let mut big = DbSimulator::new(Workload::Tatp, Hardware::D, 1);
        small.set_noise_sigma(0.0);
        big.set_noise_sigma(0.0);
        let cfg_small = small.default_config().to_vec();
        let cfg_big = big.default_config().to_vec();
        let v_small = small.evaluate(&cfg_small).value;
        let v_big = big.evaluate(&cfg_big).value;
        assert!(v_big > v_small * 2.0);
    }

    #[test]
    fn metrics_have_stable_dimension_and_identify_workloads() {
        let mut a = sim(Workload::Tpcc);
        let mut b = sim(Workload::Twitter);
        let cfg_a = a.default_config().to_vec();
        let cfg_b = b.default_config().to_vec();
        let ma = a.evaluate(&cfg_a).metrics;
        let mb = b.evaluate(&cfg_b).metrics;
        assert_eq!(ma.len(), METRICS_DIM);
        let dist: f64 = ma.iter().zip(&mb).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
        assert!(dist > 0.3, "different workloads should have distinct metric signatures");
    }

    #[test]
    fn ledger_accumulates() {
        let mut s = sim(Workload::Voter);
        let cfg = s.default_config().to_vec();
        s.evaluate(&cfg);
        s.evaluate(&cfg);
        assert_eq!(s.n_evals(), 2);
        assert!((s.total_simulated_secs() - 2.0 * (EVAL_SECONDS + RESTART_SECONDS)).abs() < 1e-9);
    }

    #[test]
    fn evaluate_seeded_is_pure_and_stream_independent() {
        let mut s = sim(Workload::Tpcc);
        let cfg = s.default_config().to_vec();
        let a = s.evaluate_seeded(&cfg, 7);
        s.evaluate(&cfg); // advance the internal stream
        let b = s.evaluate_seeded(&cfg, 7);
        assert_eq!(a.value.to_bits(), b.value.to_bits(), "seeded eval must ignore the stream");
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(s.n_evals(), 1, "seeded evals must not touch the ledger");
    }

    #[test]
    fn evaluate_stream_unchanged_by_refactor() {
        // Two simulators with the same seed must produce identical values
        // whether or not seeded evaluations are interleaved.
        let mut a = sim(Workload::Twitter);
        let mut b = sim(Workload::Twitter);
        let cfg = a.default_config().to_vec();
        b.evaluate_seeded(&cfg, 99);
        for _ in 0..3 {
            let va = a.evaluate(&cfg).value;
            let vb = b.evaluate(&cfg).value;
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }

    #[test]
    fn noise_is_multiplicative_and_bounded() {
        let mut s = sim(Workload::Tatp);
        let cfg = s.default_config().to_vec();
        let expected = s.expected_value(&cfg).expect("modelled config must evaluate");
        for _ in 0..50 {
            let v = s.evaluate(&cfg).value;
            assert!((v / expected - 1.0).abs() < 0.15, "noise too large: {v} vs {expected}");
        }
    }

    #[test]
    fn optimizer_search_depth_matters_only_for_job() {
        let job = sim(Workload::Job);
        let tpcc = sim(Workload::Tpcc);
        let osd_idx = job.catalog().expect_index("optimizer_search_depth");

        let mut cfg = job.default_config().to_vec();
        cfg[osd_idx] = 8.0;
        let lat = job.expected_value(&cfg).expect("modelled config must evaluate");
        assert!(
            lat < job.expected_value(job.default_config()).expect("modelled config must evaluate")
                * 0.85
        );

        let mut cfg_t = tpcc.default_config().to_vec();
        cfg_t[osd_idx] = 8.0;
        let tps = tpcc.expected_value(&cfg_t).expect("modelled config must evaluate");
        let tps_d =
            tpcc.expected_value(tpcc.default_config()).expect("modelled config must evaluate");
        assert!((tps / tps_d - 1.0).abs() < 0.03);
    }
}
