//! Knob specifications: name, typed domain, and default value.
//!
//! Configurations are passed around as raw `f64` vectors in catalog order:
//! continuous knobs hold their value directly, integer knobs hold a rounded
//! value, categorical knobs hold the index of the chosen option. The
//! [`Domain`] carries everything needed to sample, clamp, and encode a
//! knob; `dbtune-core` builds its generic configuration spaces from these.

/// The domain of a single configuration knob.
#[derive(Clone, Debug, PartialEq)]
pub enum Domain {
    /// A real-valued knob in `[lo, hi]`; `log` selects log-uniform
    /// sampling/encoding for knobs spanning orders of magnitude.
    Real {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
        /// Sample/encode on a log scale.
        log: bool,
    },
    /// An integer-valued knob in `[lo, hi]`.
    Int {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
        /// Sample/encode on a log scale.
        log: bool,
    },
    /// A categorical knob with named options; values are option indices.
    Cat {
        /// Option labels, in index order.
        choices: Vec<&'static str>,
    },
}

impl Domain {
    /// Number of categorical options, or `None` for numeric domains.
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            Domain::Cat { choices } => Some(choices.len()),
            _ => None,
        }
    }

    /// True for categorical domains.
    pub fn is_categorical(&self) -> bool {
        matches!(self, Domain::Cat { .. })
    }

    /// True for integer domains.
    pub fn is_integer(&self) -> bool {
        matches!(self, Domain::Int { .. })
    }

    /// Clamps and legalizes a raw value into the domain (rounding integers,
    /// clamping categorical codes).
    pub fn clamp(&self, v: f64) -> f64 {
        match self {
            Domain::Real { lo, hi, .. } => v.clamp(*lo, *hi),
            Domain::Int { lo, hi, .. } => v.round().clamp(*lo as f64, *hi as f64),
            Domain::Cat { choices } => v.round().clamp(0.0, (choices.len() - 1) as f64),
        }
    }

    /// Maps a raw value to the unit interval `[0, 1]` (categoricals map to
    /// `index / (k-1)` — the *ordinal* encoding vanilla BO is stuck with).
    pub fn to_unit(&self, v: f64) -> f64 {
        match self {
            Domain::Real { lo, hi, log } => unit_of(v, *lo, *hi, *log),
            Domain::Int { lo, hi, log } => unit_of(v, *lo as f64, *hi as f64, *log),
            Domain::Cat { choices } => {
                if choices.len() <= 1 {
                    0.0
                } else {
                    v / (choices.len() - 1) as f64
                }
            }
        }
    }

    /// Maps a unit-interval value back to a legal raw value.
    pub fn from_unit(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        match self {
            Domain::Real { lo, hi, log } => raw_of(u, *lo, *hi, *log),
            Domain::Int { lo, hi, log } => {
                raw_of(u, *lo as f64, *hi as f64, *log).round().clamp(*lo as f64, *hi as f64)
            }
            Domain::Cat { choices } => {
                // Floor-based decode gives every category an equal-width
                // bin, so uniform unit samples give uniform categories.
                let k = choices.len() as f64;
                (u * k).floor().clamp(0.0, k - 1.0)
            }
        }
    }
}

fn unit_of(v: f64, lo: f64, hi: f64, log: bool) -> f64 {
    if hi <= lo {
        return 0.0;
    }
    let u = if log {
        debug_assert!(lo > 0.0, "log domain needs positive bounds");
        (v.max(lo).ln() - lo.ln()) / (hi.ln() - lo.ln())
    } else {
        (v - lo) / (hi - lo)
    };
    u.clamp(0.0, 1.0)
}

fn raw_of(u: f64, lo: f64, hi: f64, log: bool) -> f64 {
    if log {
        (lo.ln() + u * (hi.ln() - lo.ln())).exp()
    } else {
        lo + u * (hi - lo)
    }
}

/// A named knob with a domain and a default value (raw representation).
#[derive(Clone, Debug)]
pub struct KnobSpec {
    /// MySQL-style variable name.
    pub name: &'static str,
    /// Value domain.
    pub domain: Domain,
    /// Default raw value (categoricals: option index).
    pub default: f64,
}

impl KnobSpec {
    /// Continuous knob helper.
    pub fn real(name: &'static str, lo: f64, hi: f64, log: bool, default: f64) -> Self {
        assert!(lo < hi && default >= lo && default <= hi, "bad real spec {name}");
        Self { name, domain: Domain::Real { lo, hi, log }, default }
    }

    /// Integer knob helper.
    pub fn int(name: &'static str, lo: i64, hi: i64, log: bool, default: i64) -> Self {
        assert!(lo < hi && default >= lo && default <= hi, "bad int spec {name}");
        Self { name, domain: Domain::Int { lo, hi, log }, default: default as f64 }
    }

    /// Categorical knob helper; `default` is an option index.
    pub fn cat(name: &'static str, choices: Vec<&'static str>, default: usize) -> Self {
        assert!(default < choices.len(), "bad cat spec {name}");
        Self { name, domain: Domain::Cat { choices }, default: default as f64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_round_trip_linear() {
        let d = Domain::Real { lo: 10.0, hi: 20.0, log: false };
        for v in [10.0, 12.5, 20.0] {
            let u = d.to_unit(v);
            assert!((d.from_unit(u) - v).abs() < 1e-9);
        }
        assert_eq!(d.to_unit(10.0), 0.0);
        assert_eq!(d.to_unit(20.0), 1.0);
    }

    #[test]
    fn unit_round_trip_log() {
        let d = Domain::Real { lo: 1.0, hi: 1024.0, log: true };
        assert!((d.to_unit(32.0) - 0.5).abs() < 1e-9);
        assert!((d.from_unit(0.5) - 32.0).abs() < 1e-6);
    }

    #[test]
    fn int_from_unit_rounds() {
        let d = Domain::Int { lo: 0, hi: 10, log: false };
        assert_eq!(d.from_unit(0.449), 4.0);
        assert_eq!(d.from_unit(0.46), 5.0);
        assert_eq!(d.from_unit(1.0), 10.0);
    }

    #[test]
    fn cat_unit_mapping() {
        let d = Domain::Cat { choices: vec!["a", "b", "c"] };
        assert_eq!(d.to_unit(1.0), 0.5);
        assert_eq!(d.from_unit(0.4), 1.0);
        assert_eq!(d.from_unit(0.9), 2.0);
        assert_eq!(d.cardinality(), Some(3));
    }

    #[test]
    fn clamp_legalizes_values() {
        let d = Domain::Int { lo: 1, hi: 5, log: false };
        assert_eq!(d.clamp(0.2), 1.0);
        assert_eq!(d.clamp(3.6), 4.0);
        assert_eq!(d.clamp(99.0), 5.0);
        let c = Domain::Cat { choices: vec!["x", "y"] };
        assert_eq!(c.clamp(-1.0), 0.0);
        assert_eq!(c.clamp(1.4), 1.0);
    }

    #[test]
    fn spec_helpers_validate() {
        let k = KnobSpec::int("foo", 0, 100, false, 42);
        assert_eq!(k.default, 42.0);
        assert!(k.domain.is_integer());
        let c = KnobSpec::cat("bar", vec!["on", "off"], 1);
        assert!(c.domain.is_categorical());
    }

    #[test]
    #[should_panic(expected = "bad int spec")]
    fn spec_rejects_out_of_range_default() {
        let _ = KnobSpec::int("bad", 0, 10, false, 20);
    }
}
