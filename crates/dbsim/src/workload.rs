//! The nine benchmark workloads (Table 4) and the response-surface
//! sensitivities each one induces.
//!
//! The first block of fields mirrors Table 4 verbatim (class, size, table
//! count, read-only transaction fraction). The second block parameterizes
//! the simulator: how write-bound, scan-bound, contention-bound, … each
//! workload is. Those weights decide *which knobs matter*, which is what
//! the knob-selection and optimizer experiments measure.

use serde::{Deserialize, Serialize};

/// Workload category from Table 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Multi-join analytical queries (JOB).
    Analytical,
    /// Write-heavy OLTP benchmarks.
    Transactional,
    /// Read-mostly web traffic (Twitter).
    WebOriented,
    /// DBMS feature micro-tests (SIBench).
    FeatureTesting,
}

/// One of the nine evaluation workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// Join Order Benchmark: 113 analytical multi-join queries.
    Job,
    /// SysBench OLTP read/write mix.
    Sysbench,
    /// TPC-C order processing.
    Tpcc,
    /// SEATS airline reservation.
    Seats,
    /// Smallbank banking transactions.
    Smallbank,
    /// TATP telecom transactions.
    Tatp,
    /// Voter phone-in voting (pure writes).
    Voter,
    /// Twitter web workload.
    Twitter,
    /// SIBench snapshot-isolation feature test.
    Sibench,
}

/// Static profile of a workload: Table 4 metadata plus simulator weights.
#[derive(Clone, Debug)]
pub struct WorkloadProfile {
    /// Table 4: workload class.
    pub class: WorkloadClass,
    /// Table 4: dataset size in GB.
    pub size_gb: f64,
    /// Table 4: number of tables.
    pub tables: usize,
    /// Table 4: fraction of read-only transactions.
    pub read_only_frac: f64,
    /// How much performance is bound by the write/flush path (0..1).
    pub write_intensity: f64,
    /// How much performance is bound by random reads (0..1).
    pub read_intensity: f64,
    /// How much performance is bound by large scans/sorts (0..1).
    pub scan_intensity: f64,
    /// Join-planning complexity (drives optimizer/join-buffer knobs).
    pub join_complexity: f64,
    /// Lock/latch contention level (drives concurrency knobs).
    pub contention: f64,
    /// Fraction of reads that repeat verbatim (query-cache affinity).
    pub repeat_read: f64,
    /// Hot working set as a fraction of the dataset size.
    pub working_set_frac: f64,
    /// Default-configuration throughput on instance B (tx/s); ignored for
    /// latency-objective workloads.
    pub base_rate: f64,
}

impl Workload {
    /// All nine workloads in Table 4 order.
    pub const ALL: [Workload; 9] = [
        Workload::Job,
        Workload::Sysbench,
        Workload::Tpcc,
        Workload::Seats,
        Workload::Smallbank,
        Workload::Tatp,
        Workload::Voter,
        Workload::Twitter,
        Workload::Sibench,
    ];

    /// The eight OLTP (throughput-objective) workloads used in the
    /// knowledge-transfer study.
    pub const OLTP: [Workload; 8] = [
        Workload::Sysbench,
        Workload::Tpcc,
        Workload::Seats,
        Workload::Smallbank,
        Workload::Tatp,
        Workload::Voter,
        Workload::Twitter,
        Workload::Sibench,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Job => "JOB",
            Workload::Sysbench => "SYSBENCH",
            Workload::Tpcc => "TPC-C",
            Workload::Seats => "SEATS",
            Workload::Smallbank => "Smallbank",
            Workload::Tatp => "TATP",
            Workload::Voter => "Voter",
            Workload::Twitter => "Twitter",
            Workload::Sibench => "SIBench",
        }
    }

    /// The static profile (Table 4 metadata + simulator weights).
    pub fn profile(self) -> WorkloadProfile {
        match self {
            Workload::Job => WorkloadProfile {
                class: WorkloadClass::Analytical,
                size_gb: 9.3,
                tables: 21,
                read_only_frac: 1.0,
                write_intensity: 0.02,
                read_intensity: 0.85,
                scan_intensity: 0.9,
                join_complexity: 0.95,
                contention: 0.1,
                repeat_read: 0.15,
                working_set_frac: 0.9,
                base_rate: 0.5, // queries/s, unused: JOB is latency-objective
            },
            Workload::Sysbench => WorkloadProfile {
                class: WorkloadClass::Transactional,
                size_gb: 24.8,
                tables: 150,
                read_only_frac: 0.43,
                write_intensity: 0.75,
                read_intensity: 0.6,
                scan_intensity: 0.15,
                join_complexity: 0.05,
                contention: 0.7,
                repeat_read: 0.25,
                working_set_frac: 0.45,
                base_rate: 3200.0,
            },
            Workload::Tpcc => WorkloadProfile {
                class: WorkloadClass::Transactional,
                size_gb: 17.8,
                tables: 9,
                read_only_frac: 0.08,
                write_intensity: 0.9,
                read_intensity: 0.45,
                scan_intensity: 0.08,
                join_complexity: 0.1,
                contention: 0.85,
                repeat_read: 0.1,
                working_set_frac: 0.5,
                base_rate: 1400.0,
            },
            Workload::Seats => WorkloadProfile {
                class: WorkloadClass::Transactional,
                size_gb: 12.7,
                tables: 10,
                read_only_frac: 0.45,
                write_intensity: 0.6,
                read_intensity: 0.6,
                scan_intensity: 0.12,
                join_complexity: 0.15,
                contention: 0.6,
                repeat_read: 0.2,
                working_set_frac: 0.4,
                base_rate: 2600.0,
            },
            Workload::Smallbank => WorkloadProfile {
                class: WorkloadClass::Transactional,
                size_gb: 2.4,
                tables: 3,
                read_only_frac: 0.15,
                write_intensity: 0.85,
                read_intensity: 0.4,
                scan_intensity: 0.02,
                join_complexity: 0.02,
                contention: 0.75,
                repeat_read: 0.15,
                working_set_frac: 0.6,
                base_rate: 9000.0,
            },
            Workload::Tatp => WorkloadProfile {
                class: WorkloadClass::Transactional,
                size_gb: 6.3,
                tables: 4,
                read_only_frac: 0.4,
                write_intensity: 0.55,
                read_intensity: 0.65,
                scan_intensity: 0.03,
                join_complexity: 0.03,
                contention: 0.5,
                repeat_read: 0.35,
                working_set_frac: 0.5,
                base_rate: 11000.0,
            },
            Workload::Voter => WorkloadProfile {
                class: WorkloadClass::Transactional,
                size_gb: 0.00006,
                tables: 3,
                read_only_frac: 0.0,
                write_intensity: 0.95,
                read_intensity: 0.15,
                scan_intensity: 0.01,
                join_complexity: 0.01,
                contention: 0.9,
                repeat_read: 0.05,
                working_set_frac: 1.0,
                base_rate: 16000.0,
            },
            Workload::Twitter => WorkloadProfile {
                class: WorkloadClass::WebOriented,
                size_gb: 7.9,
                tables: 5,
                read_only_frac: 0.009,
                write_intensity: 0.35,
                read_intensity: 0.85,
                scan_intensity: 0.1,
                join_complexity: 0.08,
                contention: 0.45,
                repeat_read: 0.55,
                working_set_frac: 0.25,
                base_rate: 7000.0,
            },
            Workload::Sibench => WorkloadProfile {
                class: WorkloadClass::FeatureTesting,
                size_gb: 0.0005,
                tables: 1,
                read_only_frac: 0.5,
                write_intensity: 0.5,
                read_intensity: 0.5,
                scan_intensity: 0.3,
                join_complexity: 0.01,
                contention: 0.55,
                repeat_read: 0.3,
                working_set_frac: 1.0,
                base_rate: 12000.0,
            },
        }
    }

    /// Whether the objective is 95th-percentile latency (minimize) rather
    /// than throughput (maximize) — §4.1: OLAP uses latency.
    pub fn is_latency_objective(self) -> bool {
        matches!(self, Workload::Job)
    }

    /// Hot working-set size in MB.
    pub fn working_set_mb(self) -> f64 {
        let p = self.profile();
        (p.size_gb * 1024.0 * p.working_set_frac).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_metadata_matches_paper() {
        let job = Workload::Job.profile();
        assert_eq!(job.class, WorkloadClass::Analytical);
        assert_eq!(job.tables, 21);
        assert_eq!(job.read_only_frac, 1.0);
        let tpcc = Workload::Tpcc.profile();
        assert!((tpcc.size_gb - 17.8).abs() < 1e-9);
        assert!((tpcc.read_only_frac - 0.08).abs() < 1e-9);
        assert_eq!(Workload::Voter.profile().read_only_frac, 0.0);
    }

    #[test]
    fn only_job_is_latency_objective() {
        for w in Workload::ALL {
            assert_eq!(w.is_latency_objective(), w == Workload::Job);
        }
    }

    #[test]
    fn profiles_are_within_unit_ranges() {
        for w in Workload::ALL {
            let p = w.profile();
            for v in [
                p.read_only_frac,
                p.write_intensity,
                p.read_intensity,
                p.scan_intensity,
                p.join_complexity,
                p.contention,
                p.repeat_read,
                p.working_set_frac,
            ] {
                assert!((0.0..=1.0).contains(&v), "{}: weight {v} out of range", w.name());
            }
            assert!(p.base_rate > 0.0);
        }
    }

    #[test]
    fn oltp_list_excludes_job() {
        assert!(!Workload::OLTP.contains(&Workload::Job));
        assert_eq!(Workload::OLTP.len(), 8);
    }

    #[test]
    fn working_set_positive() {
        for w in Workload::ALL {
            assert!(w.working_set_mb() >= 1.0);
        }
    }
}
