//! Hardware instance types (Table 5 of the paper).

use serde::{Deserialize, Serialize};

/// One of the four database instance types the paper deploys on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Hardware {
    /// 4 cores, 8 GB RAM.
    A,
    /// 8 cores, 16 GB RAM (the paper's default target instance).
    B,
    /// 16 cores, 32 GB RAM.
    C,
    /// 32 cores, 64 GB RAM.
    D,
}

impl Hardware {
    /// All instance types, in Table 5 order.
    pub const ALL: [Hardware; 4] = [Hardware::A, Hardware::B, Hardware::C, Hardware::D];

    /// CPU core count.
    pub fn cores(self) -> usize {
        match self {
            Hardware::A => 4,
            Hardware::B => 8,
            Hardware::C => 16,
            Hardware::D => 32,
        }
    }

    /// RAM in megabytes.
    pub fn ram_mb(self) -> f64 {
        match self {
            Hardware::A => 8.0 * 1024.0,
            Hardware::B => 16.0 * 1024.0,
            Hardware::C => 32.0 * 1024.0,
            Hardware::D => 64.0 * 1024.0,
        }
    }

    /// Throughput scale relative to instance B (sub-linear in cores, as
    /// real OLTP scaling is).
    pub fn perf_scale(self) -> f64 {
        (self.cores() as f64 / 8.0).powf(0.8)
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Hardware::A => "A",
            Hardware::B => "B",
            Hardware::C => "C",
            Hardware::D => "D",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_values() {
        assert_eq!(Hardware::A.cores(), 4);
        assert_eq!(Hardware::D.cores(), 32);
        assert_eq!(Hardware::B.ram_mb(), 16384.0);
    }

    #[test]
    fn perf_scale_is_monotone_and_anchored_at_b() {
        assert!((Hardware::B.perf_scale() - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for hw in Hardware::ALL {
            assert!(hw.perf_scale() > prev);
            prev = hw.perf_scale();
        }
    }
}
