//! Deterministic fault injection: replayable chaos for the evaluation
//! pipeline.
//!
//! A production tuning loop over a live DBMS routinely loses individual
//! evaluations — stress tests time out, a flaky replica dies mid-run, a
//! metrics scrape returns garbage. The paper's §4.1 only models the
//! *deterministic* failure (memory overcommit → crash); this module adds
//! the *transient* kind in a form the workspace's determinism contract
//! can digest: every fault is a pure function of `(plan_seed,
//! eval_index)`, so a chaos run replays bit-identically on any worker
//! count, and turning the plan off restores byte-identical baseline
//! results.
//!
//! The schedule deliberately does **not** depend on the configuration
//! being evaluated: transient faults strike the *attempt*, not the
//! configuration (that is what distinguishes them from the simulator's
//! crash regions), which is also why retried attempts draw fresh
//! schedule slots. See `docs/robustness.md` for the full grammar and
//! semantics.

/// What a scheduled fault does to the evaluation it strikes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// The stress test hangs and is killed at the timeout: no result, the
    /// full timeout window is charged to the simulated clock.
    Timeout,
    /// The DBMS (or its host) dies for reasons unrelated to the
    /// configuration: no result, one evaluation window is lost.
    SpuriousCrash,
    /// The evaluation completes but the metrics scrape is corrupted:
    /// the result stands, the metric vector is deterministically mangled.
    NoisyMetrics {
        /// Seed for the deterministic corruption pattern.
        corruption: u64,
    },
    /// The evaluation completes but took far longer than budgeted (I/O
    /// contention, compaction storm): extra seconds on the ledger.
    Stall {
        /// Extra simulated seconds charged on top of the evaluation.
        extra_secs: f64,
    },
}

/// A seeded, replayable schedule of transient faults.
///
/// `fault_at(i)` answers "what happens to the i-th evaluation attempt"
/// purely from `(seed, i)` — no internal state, no stream to keep in
/// sync. Rates are independent per kind; when several kinds fire on the
/// same slot the most disruptive wins (timeout > crash > noise > stall),
/// so the expected disruption never exceeds the sum of the rates.
///
/// Parsed from the drivers' `faults=` flag; see [`FaultPlan::parse`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Schedule seed: same seed, same faults, every run.
    pub seed: u64,
    /// Probability an attempt times out.
    pub timeout_rate: f64,
    /// Probability an attempt dies spuriously.
    pub crash_rate: f64,
    /// Probability a completed attempt's metrics are corrupted.
    pub noise_rate: f64,
    /// Probability a completed attempt stalls.
    pub stall_rate: f64,
    /// Simulated seconds a timeout burns before the harness gives up
    /// (the stress-test window plus a recovery restart).
    pub timeout_secs: f64,
    /// Simulated seconds a stall adds to an otherwise-normal evaluation.
    pub stall_secs: f64,
}

/// Default timeout charge: the simulator's 180 s stress window plus the
/// 30 s restart, i.e. a hung test costs exactly one evaluation slot.
pub const DEFAULT_TIMEOUT_SECS: f64 = crate::sim::EVAL_SECONDS + crate::sim::RESTART_SECONDS;
/// Default stall charge: half an evaluation window of extra I/O wait.
pub const DEFAULT_STALL_SECS: f64 = crate::sim::EVAL_SECONDS / 2.0;

impl Default for FaultPlan {
    fn default() -> Self {
        Self::disabled()
    }
}

/// splitmix64 finalizer (the same permutation the executor uses for cell
/// seeds; duplicated here so dbsim stays dependency-light).
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Maps a 64-bit word to a uniform draw in `[0, 1)`.
#[inline]
fn unit(word: u64) -> f64 {
    // 53 high bits — the full significand of an f64 in [0, 1).
    (word >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// A plan that never fires (all rates zero).
    pub fn disabled() -> Self {
        Self {
            seed: 0,
            timeout_rate: 0.0,
            crash_rate: 0.0,
            noise_rate: 0.0,
            stall_rate: 0.0,
            timeout_secs: DEFAULT_TIMEOUT_SECS,
            stall_secs: DEFAULT_STALL_SECS,
        }
    }

    /// True when any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.timeout_rate > 0.0
            || self.crash_rate > 0.0
            || self.noise_rate > 0.0
            || self.stall_rate > 0.0
    }

    /// The same plan under a different schedule seed — how a grid gives
    /// every cell its own fault sequence while keeping one set of rates
    /// (`plan.reseeded(mix(plan.seed, cell_index))`).
    pub fn reseeded(&self, seed: u64) -> Self {
        Self { seed, ..*self }
    }

    /// The fault striking evaluation attempt `eval_index`, if any — a
    /// pure function of `(self.seed, eval_index)`.
    ///
    /// Each kind gets an independent draw from its own substream;
    /// collisions resolve to the most disruptive kind so a single
    /// attempt never suffers two faults.
    pub fn fault_at(&self, eval_index: u64) -> Option<FaultEvent> {
        let base = splitmix64(self.seed ^ eval_index.rotate_left(17));
        if unit(splitmix64(base ^ 0x7134_0001)) < self.timeout_rate {
            return Some(FaultEvent::Timeout);
        }
        if unit(splitmix64(base ^ 0x7134_0002)) < self.crash_rate {
            return Some(FaultEvent::SpuriousCrash);
        }
        if unit(splitmix64(base ^ 0x7134_0003)) < self.noise_rate {
            return Some(FaultEvent::NoisyMetrics { corruption: splitmix64(base ^ 0x7134_0004) });
        }
        if unit(splitmix64(base ^ 0x7134_0005)) < self.stall_rate {
            return Some(FaultEvent::Stall { extra_secs: self.stall_secs });
        }
        None
    }

    /// Deterministically corrupts a metric vector in place (the
    /// [`FaultEvent::NoisyMetrics`] payload): roughly a quarter of the
    /// entries are scaled by a factor in `[0.25, 4)` derived from
    /// `corruption` and the entry index. Applied *after* any cache so
    /// the stored result stays clean.
    pub fn corrupt_metrics(corruption: u64, metrics: &mut [f64]) {
        for (i, m) in metrics.iter_mut().enumerate() {
            let w = splitmix64(corruption ^ (i as u64).wrapping_mul(0x9e37_79b9));
            if w & 3 == 0 {
                // 2^u for u uniform in [-2, 2): multiplicative garbage.
                *m *= (unit(splitmix64(w)) * 4.0 - 2.0).exp2();
            }
        }
    }

    /// Parses the drivers' `faults=` flag.
    ///
    /// Grammar: `off` (or the empty string) disables injection;
    /// otherwise a comma-separated list of `key:value` pairs with keys
    /// `seed`, `timeout`, `crash`, `noise`, `stall` (rates in `[0, 1]`)
    /// and `timeout_secs`, `stall_secs` (positive seconds). Example:
    /// `faults=seed:11,timeout:0.05,crash:0.03,noise:0.1,stall:0.05`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "off" {
            return Ok(Self::disabled());
        }
        let mut plan = Self::disabled();
        for pair in spec.split(',') {
            let (key, value) = pair
                .split_once(':')
                .ok_or_else(|| format!("fault plan: expected key:value, got `{pair}`"))?;
            let num = || -> Result<f64, String> {
                value.parse::<f64>().map_err(|_| format!("fault plan: bad number `{value}`"))
            };
            let rate = || -> Result<f64, String> {
                let r = num()?;
                if (0.0..=1.0).contains(&r) {
                    Ok(r)
                } else {
                    Err(format!("fault plan: rate `{key}` must be in [0,1], got {value}"))
                }
            };
            match key.trim() {
                "seed" => {
                    plan.seed =
                        value.parse().map_err(|_| format!("fault plan: bad seed `{value}`"))?;
                }
                "timeout" => plan.timeout_rate = rate()?,
                "crash" => plan.crash_rate = rate()?,
                "noise" => plan.noise_rate = rate()?,
                "stall" => plan.stall_rate = rate()?,
                "timeout_secs" => plan.timeout_secs = num()?,
                "stall_secs" => plan.stall_secs = num()?,
                other => return Err(format!("fault plan: unknown key `{other}`")),
            }
        }
        if plan.timeout_secs <= 0.0 || plan.stall_secs <= 0.0 {
            return Err("fault plan: charged seconds must be positive".to_string());
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_plan() -> FaultPlan {
        FaultPlan {
            seed: 11,
            timeout_rate: 0.05,
            crash_rate: 0.05,
            noise_rate: 0.1,
            stall_rate: 0.1,
            ..FaultPlan::disabled()
        }
    }

    #[test]
    fn schedule_is_pure_and_replayable() {
        let plan = busy_plan();
        let a: Vec<Option<FaultEvent>> = (0..512).map(|i| plan.fault_at(i)).collect();
        // Query again, out of order: same answers (no internal stream).
        for i in (0..512).rev() {
            assert_eq!(plan.fault_at(i), a[i as usize]);
        }
        // A different seed reshuffles the schedule.
        let b: Vec<Option<FaultEvent>> = (0..512).map(|i| plan.reseeded(12).fault_at(i)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_active());
        assert!((0..4096).all(|i| plan.fault_at(i).is_none()));
    }

    #[test]
    fn rates_land_near_targets() {
        let plan = busy_plan();
        let n = 20_000u64;
        let mut counts = [0u64; 4];
        for i in 0..n {
            match plan.fault_at(i) {
                Some(FaultEvent::Timeout) => counts[0] += 1,
                Some(FaultEvent::SpuriousCrash) => counts[1] += 1,
                Some(FaultEvent::NoisyMetrics { .. }) => counts[2] += 1,
                Some(FaultEvent::Stall { .. }) => counts[3] += 1,
                None => {}
            }
        }
        let frac = |c: u64| c as f64 / n as f64;
        // Loose 3-sigma-ish bands; priority resolution skims a little off
        // the lower-priority kinds.
        assert!((0.04..0.06).contains(&frac(counts[0])), "timeout {}", frac(counts[0]));
        assert!((0.035..0.06).contains(&frac(counts[1])), "crash {}", frac(counts[1]));
        assert!((0.07..0.12).contains(&frac(counts[2])), "noise {}", frac(counts[2]));
        assert!((0.06..0.12).contains(&frac(counts[3])), "stall {}", frac(counts[3]));
    }

    #[test]
    fn corruption_is_deterministic_and_partial() {
        let mut a: Vec<f64> = (1..=40).map(|i| i as f64).collect();
        let mut b = a.clone();
        let orig = a.clone();
        FaultPlan::corrupt_metrics(99, &mut a);
        FaultPlan::corrupt_metrics(99, &mut b);
        assert_eq!(a, b, "same corruption seed, same garbage");
        let changed = a.iter().zip(&orig).filter(|(x, y)| x != y).count();
        assert!(changed > 0, "corruption must touch something");
        assert!(changed < orig.len(), "corruption must not rewrite everything");
        let mut c = orig.clone();
        FaultPlan::corrupt_metrics(100, &mut c);
        assert_ne!(a, c, "different corruption seeds diverge");
    }

    #[test]
    fn parse_round_trips_the_documented_grammar() {
        let plan =
            FaultPlan::parse("seed:11,timeout:0.05,crash:0.03,noise:0.1,stall:0.05").expect("ok");
        assert_eq!(plan.seed, 11);
        assert!((plan.timeout_rate - 0.05).abs() < 1e-12);
        assert!((plan.crash_rate - 0.03).abs() < 1e-12);
        assert!((plan.noise_rate - 0.1).abs() < 1e-12);
        assert!((plan.stall_rate - 0.05).abs() < 1e-12);
        assert!(plan.is_active());

        assert_eq!(FaultPlan::parse("off").expect("off"), FaultPlan::disabled());
        assert_eq!(FaultPlan::parse("").expect("empty"), FaultPlan::disabled());
        let secs = FaultPlan::parse("stall:1,stall_secs:42").expect("secs");
        assert!((secs.stall_secs - 42.0).abs() < 1e-12);
        match secs.fault_at(0) {
            Some(FaultEvent::Stall { extra_secs }) => assert!((extra_secs - 42.0).abs() < 1e-12),
            other => panic!("rate 1.0 must always stall, got {other:?}"),
        }

        assert!(FaultPlan::parse("timeout:1.5").is_err(), "rates above 1 rejected");
        assert!(FaultPlan::parse("bogus:1").is_err(), "unknown keys rejected");
        assert!(FaultPlan::parse("timeout=0.1").is_err(), "= is not the pair separator");
        assert!(FaultPlan::parse("timeout:0.1,timeout_secs:-5").is_err(), "negative charge");
    }
}
