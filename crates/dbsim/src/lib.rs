//! Deterministic MySQL-5.7-style DBMS simulator.
//!
//! The paper evaluates tuning algorithms against RDS MySQL 5.7 instances
//! replaying OLTP-Bench workloads — hardware we cannot access. This crate
//! substitutes an *analytic performance model* with the structural
//! properties the paper's analysis depends on:
//!
//! * a **197-knob catalog** mirroring MySQL 5.7 variable names, types,
//!   domains, and defaults (continuous, integer, and categorical knobs —
//!   the heterogeneity the paper studies);
//! * a long tail of near-irrelevant knobs plus a small set of impactful
//!   ones whose identity depends on the workload;
//! * **robust defaults** and "trap" knobs whose default is already optimal
//!   (high variance, zero tunability — the property that separates SHAP
//!   from variance-based importance measures);
//! * **knob interactions** (per-thread buffer memory × concurrency) and
//!   **crash regions** (memory overcommit fails the evaluation, which the
//!   tuning driver replaces with the worst seen performance, §4.1);
//! * nine **workload profiles** (Table 4) and four **hardware instance
//!   types** (Table 5) that move the optimum;
//! * a 40-dimensional vector of simulated **internal metrics** (the state
//!   input of DDPG and the distance space of workload mapping);
//! * multiplicative log-normal **measurement noise** and a simulated
//!   wall-clock **cost ledger** (3-minute stress tests + restart) so the
//!   surrogate benchmark can report paper-style speedups;
//! * seeded **fault plans** ([`fault`]) injecting transient evaluation
//!   faults — timeouts, spurious crashes, corrupted metrics, stalls —
//!   on a replayable per-attempt schedule (see `docs/robustness.md`).

pub mod catalog;
pub mod fault;
pub mod hardware;
pub mod knob;
pub mod sim;
pub mod workload;

pub use catalog::KnobCatalog;
pub use fault::{FaultEvent, FaultPlan};
pub use hardware::Hardware;
pub use knob::{Domain, KnobSpec};
pub use sim::{DbSimulator, Objective, Outcome, EVAL_SECONDS, METRICS_DIM, RESTART_SECONDS};
pub use workload::{Workload, WorkloadClass};
