//! Fixture: the R family — forbidden determinism sources read by (or
//! laundered through) code reachable from the results path.

// expect: R3 at the env read — configuration must flow in explicitly.
pub fn read_env_workers() -> usize {
    std::env::var("FIXTURE_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

// expect: R4 at the thread-identity read — results keyed on which
// thread ran the work diverge across schedules.
pub fn current_shard() -> u64 {
    let id = std::thread::current().id();
    fold(id)
}

// expect: R5 — iterating the HashMap that `tables::snapshot` returns;
// the D1 line rule cannot see the callee's return type.
pub fn plan() -> usize {
    let mut total = 0;
    for name in tables::snapshot() {
        total += name.len();
    }
    total
}

// expect: no finding here — but calling into obs makes `ticks`/`draw`
// reachable, so R1/R2 are reported over in obs/src/probe.rs.
pub fn measure() -> u64 {
    probe::ticks() + probe::draw() as u64
}
