//! Fixture: the concurrency family — C1 relaxed-load guard, C2 direct
//! and cross-function lock-order inversions.

// expect: C1 — a Relaxed load guarding publication carries no
// happens-before edge.
pub fn poll(flag: &AtomicBool) {
    if flag.load(Ordering::Relaxed) {
        publish();
    }
}

// expect: C2 (paired with drain_ba) — q.a then q.b here…
pub fn drain_ab(q: &Queues) {
    let ga = q.a.lock().expect("a side");
    let gb = q.b.lock().expect("b side");
    drop((ga, gb));
}

// …and q.b then q.a here.
pub fn drain_ba(q: &Queues) {
    let gb = q.b.lock().expect("b side");
    let ga = q.a.lock().expect("a side");
    drop((ga, gb));
}

// expect: C2 (paired with rebuild) — holds s.log across a call into
// `reindex`, which takes s.idx.
pub fn append(s: &Store) {
    let g = s.log.lock().expect("log");
    reindex(s);
    drop(g);
}

pub fn reindex(s: &Store) {
    let g = s.idx.lock().expect("idx");
    drop(g);
}

// The opposite order, taken directly: s.idx then s.log.
pub fn rebuild(s: &Store) {
    let gi = s.idx.lock().expect("idx");
    let gl = s.log.lock().expect("log");
    drop((gi, gl));
}
