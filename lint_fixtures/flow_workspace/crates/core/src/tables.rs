//! Fixture: a helper returning an unordered map. The violation is at the
//! call site that iterates the result (`pipeline::plan`), not here.

pub fn snapshot() -> HashMap<String, usize> {
    HashMap::new()
}
