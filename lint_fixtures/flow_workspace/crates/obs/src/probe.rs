//! Fixture: telemetry helpers that launder nondeterminism back to the
//! results path. Telemetry may read the clock internally (D2 exempts
//! it); *returning* a clock- or RNG-derived number to a reachable caller
//! is the hole R1/R2 close. Reported at the fn definition line.

// expect: R1 — reached from pipeline::measure, returns a clock-derived
// number.
pub fn ticks() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}

// expect: R2 at the fn line, plus D3 at the thread_rng line (the line
// rule sees the direct read; R2 sees the laundering).
pub fn draw() -> f64 {
    rand::thread_rng().gen()
}
