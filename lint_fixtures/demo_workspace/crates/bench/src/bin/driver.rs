//! Fixture: bench binaries may unwrap (E1 exempt) but still may not read
//! the wall clock without a pragma (D2 applies).

fn main() {
    // expect: no finding — E1 exempts driver binaries.
    let arg = std::env::args().nth(1).unwrap();
    // expect: D2 — wall-clock read without a justification pragma.
    let t0 = std::time::Instant::now();
    println!("{} {:?}", arg, t0.elapsed());
}
