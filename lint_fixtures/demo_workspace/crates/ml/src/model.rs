//! Fixture: D3 bans unseeded randomness everywhere — library code and
//! test modules alike.

// expect: D3 — thread_rng draws from ambient entropy.
pub fn init_weights(n: usize) -> Vec<f64> {
    let mut rng = rand::thread_rng();
    (0..n).map(|_| rng.gen()).collect()
}

#[cfg(test)]
mod tests {
    // expect: D3 — even tests must derive RNGs from explicit seeds.
    #[test]
    fn unseeded_in_tests_is_still_flagged() {
        let _ = rand::rngs::StdRng::from_entropy();
    }
}
