//! Fixture: telemetry crates own the wall clock and their maps never feed
//! deterministic output — D1 and D2 do not apply here. D3 still does.

use std::collections::HashMap;
use std::time::Instant;

// expect: no finding — clock reads and map iteration are telemetry's job.
pub fn dump(counters: &HashMap<String, u64>) -> (f64, usize) {
    let t = Instant::now();
    let mut n = 0;
    for _ in counters.values() {
        n += 1;
    }
    (t.elapsed().as_secs_f64(), n)
}

// expect: D3 — ambient entropy is banned even in telemetry.
pub fn jitter() -> u64 {
    rand::thread_rng().gen()
}
