//! Fixture: `crates/obs` is the allocator-accounting layer itself — E3
//! does not apply there (the profiler pins its own state for 'static
//! access, and its counters are explicitly outside the books).

// expect: no finding — obs owns the allocator hooks and may leak.
pub fn pin(state: Vec<u64>) -> &'static [u64] {
    Box::leak(state.into_boxed_slice())
}
