//! Fixture: rule E2 — ad hoc panic containment outside the executor's
//! sanctioned layer.

// expect: E2 — library code swallowing panics on its own.
pub fn swallow(f: impl Fn() -> u32 + std::panic::RefUnwindSafe) -> Option<u32> {
    std::panic::catch_unwind(|| f()).ok()
}

// expect: no finding — a justified pragma keeps deliberate containment.
pub fn boundary(f: impl Fn() -> u32 + std::panic::RefUnwindSafe) -> Option<u32> {
    std::panic::catch_unwind(|| f()).ok() // lint: allow(E2) ffi callback boundary, state is local
}

#[cfg(test)]
mod tests {
    // expect: no finding — tests may assert that things panic.
    #[test]
    fn panics_are_observable() {
        assert!(std::panic::catch_unwind(|| panic!("boom")).is_err());
    }
}
