//! Fixture: F1's float-literal equality check applies inside optimizer
//! code — zero guards and `#[cfg(test)]` modules stay legal.

// expect: no finding — `== 0.0` is the idiomatic division guard.
pub fn is_converged(delta: f64) -> bool {
    delta == 0.0
}

// expect: F1 — exact equality against a non-zero float literal.
pub fn matches_target(score: f64) -> bool {
    score == 0.95
}

#[cfg(test)]
mod tests {
    // expect: no finding — float equality is allowed in test modules.
    #[test]
    fn exact_comparison_in_tests_is_fine() {
        assert!(1.0 == 1.0);
    }
}
