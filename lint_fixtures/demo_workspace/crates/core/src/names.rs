//! M1 corpus: telemetry name hygiene. Names become journal keys,
//! baseline-diff whitelist entries, and diag session labels, so the
//! literal passed at the registration site must be lowercase dotted
//! snake (`[a-z0-9_.]+`).

fn emit(tele: &Telemetry) {
    tele.metrics.counter("exec.cells").inc();
    tele.metrics.counter("Exec.Cells").inc(); // expect: M1 — uppercase segments
    let _s = span("suggest phase"); // expect: M1 — embedded space
    let _h = tele.metrics.histogram("legacy-latency"); // lint: allow(M1) legacy dashboard key kept until the v2 rename
    drop(_h);
}
