//! Fixture: library-crate determinism violations (D1 / D2 / E1 / F1) and
//! a legal `// lint: sorted` suppression.

use std::collections::HashMap;
use std::time::Instant;

pub struct Index {
    by_name: HashMap<String, usize>,
}

impl Index {
    // expect: D1 — field iteration through `self`.
    pub fn names(&self) -> Vec<String> {
        self.by_name.keys().cloned().collect()
    }

    // expect: D2 — wall-clock read in a non-telemetry crate.
    pub fn timed(&self) -> f64 {
        let t = Instant::now();
        t.elapsed().as_secs_f64()
    }
}

// expect: D1 — `for .. in` over a hash map parameter's values.
pub fn merge(a: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::new();
    for v in a.values() {
        out.push(*v);
    }
    out.sort_unstable();
    out
}

// expect: no finding — the trailing `sorted` pragma proves the order.
pub fn sorted_keys(a: &HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = a.keys().copied().collect(); // lint: sorted collected then sorted below
    keys.sort_unstable();
    keys
}

// expect: E1 + F1 — NaN-panicking comparison, context-free unwrap.
pub fn best(xs: &[f64]) -> f64 {
    let mut ys = xs.to_vec();
    ys.sort_by(|p, q| p.partial_cmp(q).unwrap());
    ys[0]
}
