//! Fixture: rule E3 — leaked allocations escape the memory profiler's
//! books (`Box::leak` never deallocates; `mem::forget` skips the hook).

// expect: E3 — Box::leak pins bytes for 'static, invisible to accounting.
pub fn stash(v: Vec<u32>) -> &'static [u32] {
    Box::leak(v.into_boxed_slice())
}

// expect: E3 — mem::forget drops the value without running the allocator.
pub fn vanish(v: Vec<u32>) {
    std::mem::forget(v);
}

// expect: no finding — a justified pragma keeps a deliberate, bounded leak.
pub fn intern(s: String) -> &'static str {
    Box::leak(s.into_boxed_str()) // lint: allow(E3) interned once at startup, bounded set
}

#[cfg(test)]
mod tests {
    // expect: no finding — tests may leak to fabricate 'static fixtures.
    #[test]
    fn leaked_fixture() {
        let s: &'static str = Box::leak(String::from("e3").into_boxed_str());
        assert_eq!(s, "e3");
    }
}
