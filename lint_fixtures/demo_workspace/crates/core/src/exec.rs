//! Fixture: the sanctioned panic-containment layer — `catch_unwind` in
//! `crates/core/src/exec.rs` is the executor's job, not a violation.

// expect: no finding — this path is E2's one library-code exemption.
pub fn run_contained(f: impl Fn() -> u32 + std::panic::RefUnwindSafe) -> Option<u32> {
    std::panic::catch_unwind(|| f()).ok()
}
