//! Fixture: the pragma grammar end to end — standalone suppression,
//! missing justification (P1), stale pragma (P2), unknown rule id (P3).

// expect: no finding — standalone pragma covers the next line.
pub fn suppressed_clock() -> std::time::Instant {
    // lint: allow(D2) fixture demonstrating a standalone pragma
    std::time::Instant::now()
}

// expect: P1 — a pragma with no justification is malformed.
pub fn bad_pragma(x: Option<u32>) -> u32 {
    x.expect("present") // lint: allow(E1)
}

// expect: P2 — the pragma suppresses nothing on this line.
pub fn stale_pragma() -> u32 {
    42 // lint: allow(D3) nothing random happens here
}

// expect: P3 — `Z9` is not a rule id.
pub fn unknown_rule() -> u32 {
    7 // lint: allow(Z9) not a rule id
}
