//! Fixture: scanner edge cases — nested scopes end hash-binding
//! visibility, and string literals mentioning `HashMap` are masked.

use std::collections::HashMap;

fn main() {
    {
        let m: HashMap<u32, u32> = HashMap::new();
        // expect: D1 — `m` is hash-bound in an enclosing scope.
        m.iter().count();
    }
    {
        // expect: no finding — this `m` is a Vec; the hash binding above
        // went out of scope with its block.
        let m = vec![1, 2, 3];
        m.iter().count();
    }
    // expect: no finding — occurrences inside string literals are masked.
    let s = "HashMap .keys() for x in m";
    println!("{} {}", s, s.len());
}
