//! Fixture: the diff-policy table the S3 check parses — one
//! `("name", MetricPolicy::…)` entry per counter/gauge.

pub enum MetricPolicy {
    Exact,
    Noise,
}

pub const METRIC_POLICY: &[(&str, MetricPolicy)] = &[
    ("app.requests", MetricPolicy::Exact),
    ("app.queue_depth", MetricPolicy::Noise),
    // expect: S3 on the next entry — its emitter was deleted.
    ("app.stale", MetricPolicy::Exact),
];
