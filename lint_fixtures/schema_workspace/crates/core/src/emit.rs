//! Fixture: emitters for the S family. Names present in the docs table
//! (and, for counters/gauges, in `METRIC_POLICY`) are clean; `app.rogue`
//! and the `loose` span are schema drift.

// expect: no findings — every name is documented and policied.
pub fn serve(t: &Telemetry) {
    let _s = span("boot");
    t.metrics.counter("app.requests").inc();
    t.metrics.gauge("app.queue_depth").set(3);
}

// expect: S1 + S3 — an undocumented counter with no policy entry.
pub fn rogue(t: &Telemetry) {
    t.metrics.counter("app.rogue").inc();
}

// expect: S1 — an undocumented span.
pub fn stray() {
    let _s = span("loose");
}
